#include "harness.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/io.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/trace_span.hh"

namespace mnoc::bench {

namespace {

int
envInt(const char *name, int fallback)
{
    const char *value = std::getenv(name);
    return value ? std::atoi(value) : fallback;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *value = std::getenv(name);
    return value ? std::string(value) : fallback;
}

} // namespace

Harness::Harness()
{
    numCores_ = envInt("MNOC_BENCH_CORES", 256);
    opsPerThread_ = envInt("MNOC_BENCH_OPS", 4000);
    outDir_ = envString("MNOC_BENCH_DIR", "bench_out");
    std::filesystem::create_directories(outDir_);
    std::filesystem::create_directories(outDir_ + "/cache");

    layout_ = std::make_unique<optics::SerpentineLayout>(
        numCores_, optics::defaultWaveguideLength);
    int ports = numCores_ / 4;
    portLayout_ = std::make_unique<optics::SerpentineLayout>(
        ports, Meters(0.10 * ports / 64.0));
    xbar_ = std::make_unique<optics::OpticalCrossbar>(*layout_,
                                                      deviceParams_);
    designer_ = std::make_unique<core::Designer>(*xbar_, powerParams_);
}

const std::vector<std::string> &
Harness::benchmarks() const
{
    return workloads::splashBenchmarks();
}

std::string
Harness::cacheKey(const std::string &benchmark,
                  const std::string &network) const
{
    return benchmark + "_" + network + "_n" +
           std::to_string(numCores_) + "_ops" +
           std::to_string(opsPerThread_);
}

sim::Trace
Harness::simulate(const std::string &benchmark,
                  const std::string &network)
{
    noc::NetworkConfig net_config;
    std::unique_ptr<noc::Network> net;
    if (network == "mnoc") {
        net = std::make_unique<noc::MnocNetwork>(*layout_, net_config);
    } else if (network == "rnoc") {
        net = std::make_unique<noc::ClusteredNetwork>(
            numCores_, *portLayout_, net_config, "rNoC");
    } else {
        fatal("unknown network kind: " + network);
    }

    sim::SimConfig config;
    config.numCores = numCores_;
    workloads::WorkloadScale scale;
    scale.opsPerThread = opsPerThread_;
    auto workload = workloads::makeWorkload(benchmark, scale);
    std::cerr << "[harness] simulating " << benchmark << " on "
              << network << "...\n";
    TraceSpan span("harness.simulate:" + benchmark, "bench");
    return sim::toTrace(
        sim::runSimulation(config, *net, *workload, 1));
}

const sim::Trace &
Harness::trace(const std::string &benchmark,
               const std::string &network)
{
    auto &metrics = MetricsRegistry::global();
    std::string key = cacheKey(benchmark, network);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = traces_.find(key);
        if (it != traces_.end()) {
            metrics.counter("bench.trace_cache.memory_hits").add();
            return it->second;
        }
    }

    // Simulate (or load) outside the lock: concurrent callers for the
    // *same* key may duplicate work, but both produce identical
    // traces, and the first insert wins.
    std::string path = outDir_ + "/cache/" + key + ".trace";
    sim::Trace t;
    if (std::filesystem::exists(path)) {
        metrics.counter("bench.trace_cache.disk_hits").add();
        t = sim::loadTrace(path);
    } else {
        metrics.counter("bench.trace_cache.misses").add();
        t = simulate(benchmark, network);
        sim::saveTrace(path, t);
    }

    std::lock_guard<std::mutex> lock(cacheMutex_);
    // Map references stay valid across later inserts, so the returned
    // reference outlives the lock.
    return traces_.emplace(key, std::move(t)).first->second;
}

void
Harness::simulateSuite(const std::string &network, ThreadPool *pool)
{
    TraceSpan span("harness.simulateSuite:" + network, "bench");
    const auto &names = benchmarks();
    ThreadPool &workers = pool != nullptr ? *pool
                                          : ThreadPool::global();
    workers.parallelFor(
        static_cast<long long>(names.size()), [&](long long i) {
            trace(names[static_cast<std::size_t>(i)], network);
        });
}

const std::vector<int> &
Harness::mapping(const std::string &benchmark)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = mappings_.find(benchmark);
        if (it != mappings_.end())
            return it->second;
    }

    std::string path = outDir_ + "/cache/" +
                       cacheKey(benchmark, "mnoc") + ".map";
    std::vector<int> map;
    if (std::filesystem::exists(path)) {
        std::ifstream in(path);
        int core;
        while (in >> core)
            map.push_back(core);
        fatalIf(static_cast<int>(map.size()) != numCores_,
                "corrupt mapping cache: " + path);
    } else {
        std::cerr << "[harness] taboo mapping for " << benchmark
                  << "...\n";
        TraceSpan span("harness.mapping:" + benchmark, "bench");
        core::MappingParams params;
        params.tabooIterations = 20000;
        auto result = designer_->map(threadFlow(benchmark),
                                     core::MappingMethod::Taboo,
                                     params);
        map = result.threadToCore;
        FileWriter out(path);
        for (int core : map)
            out.stream() << core << "\n";
        out.close();
    }
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return mappings_.emplace(benchmark, std::move(map))
        .first->second;
}

std::vector<int>
Harness::identityMapping() const
{
    std::vector<int> map(numCores_);
    for (int i = 0; i < numCores_; ++i)
        map[i] = i;
    return map;
}

FlowMatrix
Harness::threadFlow(const std::string &benchmark)
{
    return toFlowMatrix(trace(benchmark).flits);
}

FlowMatrix
Harness::sampledCoreFlow(const std::vector<std::string> &names)
{
    FlowMatrix avg(numCores_, numCores_, 0.0);
    for (const auto &name : names) {
        FlowMatrix flow = permuteFlow(threadFlow(name), mapping(name));
        double total = flow.total();
        if (total <= 0.0)
            continue;
        for (int s = 0; s < numCores_; ++s)
            for (int d = 0; d < numCores_; ++d)
                avg(s, d) += flow(s, d) / total;
    }
    return avg;
}

std::string
Harness::outPath(const std::string &name) const
{
    return outDir_ + "/" + name;
}

void
printHeader(const std::string &title, const std::string &source)
{
    std::cout << "==============================================="
                 "=============\n";
    std::cout << title << "\n";
    std::cout << "(reproduces " << source
              << " of Pang et al., ASPLOS 2015)\n";
    std::cout << "==============================================="
                 "=============\n";
}

} // namespace mnoc::bench
