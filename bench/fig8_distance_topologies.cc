/**
 * @file
 * Figure 8: distance-based power topologies with and without QAP
 * thread mapping.  Six designs per benchmark, normalized to the
 * single-mode naive-mapping baseline (1M): 1M, 1M_T, 2M_N_U,
 * 2M_T_N_U, 4M_N_U, 4M_T_N_U.
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Distance-based power topologies with/without thread mapping",
        "Figure 8");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    FlowMatrix uniform(n, n, 1.0);
    auto identity = harness.identityMapping();

    // Shared hardware designs (mapping-independent).
    std::map<std::string, core::MnocDesign> designs;
    for (int modes : {1, 2, 4}) {
        core::DesignSpec spec;
        spec.numModes = modes;
        spec.assignment = core::Assignment::DistanceBased;
        spec.weights = core::WeightSource::Uniform;
        auto topo = designer.buildTopology(spec, uniform);
        designs.emplace(std::to_string(modes) + "M",
                        designer.buildDesign(spec, topo, uniform));
    }

    const std::vector<std::string> columns = {
        "1M", "1M_T", "2M_N_U", "2M_T_N_U", "4M_N_U", "4M_T_N_U"};

    TextTable table;
    {
        std::vector<std::string> header = {"benchmark"};
        header.insert(header.end(), columns.begin(), columns.end());
        table.addRow(header);
    }
    CsvWriter csv(harness.outPath("fig8_distance_topologies.csv"));
    {
        std::vector<std::string> header = {"benchmark"};
        header.insert(header.end(), columns.begin(), columns.end());
        csv.writeRow(header);
    }

    std::map<std::string, std::vector<double>> normalized;
    for (const auto &name : harness.benchmarks()) {
        const auto &trace = harness.trace(name);
        const auto &taboo = harness.mapping(name);

        auto power = [&](const std::string &design,
                         const std::vector<int> &map) {
            return designer.evaluate(designs.at(design), trace, map)
                .total();
        };
        double base = power("1M", identity);

        std::map<std::string, double> row = {
            {"1M", 1.0},
            {"1M_T", power("1M", taboo) / base},
            {"2M_N_U", power("2M", identity) / base},
            {"2M_T_N_U", power("2M", taboo) / base},
            {"4M_N_U", power("4M", identity) / base},
            {"4M_T_N_U", power("4M", taboo) / base},
        };

        std::vector<std::string> cells = {name};
        csv.cell(name);
        for (const auto &col : columns) {
            cells.push_back(TextTable::num(row.at(col), 3));
            csv.cell(row.at(col));
            normalized[col].push_back(row.at(col));
        }
        table.addRow(cells);
        csv.endRow();
    }

    // The paper reports harmonic means for normalized power.
    std::vector<std::string> avg = {"hmean"};
    csv.cell("hmean");
    for (const auto &col : columns) {
        double h = harmonicMean(normalized.at(col));
        avg.push_back(TextTable::num(h, 3));
        csv.cell(h);
    }
    csv.endRow();
    table.addRow(avg);
    table.print(std::cout);

    std::cout << "\nPaper anchors: 2M_N_U ~0.90, 4M_N_U ~0.88 of base "
                 "(10-12% savings);\nQAP mapping alone ~0.73; combined "
                 "4M_T_N_U ~0.61 (39% reduction).\n";
    return 0;
}
