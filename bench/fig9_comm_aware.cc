/**
 * @file
 * Figure 9: communication-aware mode assignment (G) versus naive
 * distance-based assignment (N), with splitter weights sampled from 4
 * benchmarks (S4) or all 12 (S12).  All designs use QAP thread
 * mapping.  Panels: (a) two modes, (b) four modes.
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

namespace {

struct DesignPoint
{
    std::string label;
    core::MnocDesign design;
};

} // namespace

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Communication-aware vs distance-based mode assignment",
        "Figure 9 (a: two modes, b: four modes)");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    auto identity = harness.identityMapping();
    FlowMatrix uniform(n, n, 1.0);

    std::cerr << "[fig9] building sampled design flows...\n";
    FlowMatrix s4 = harness.sampledCoreFlow(
        workloads::sampledBenchmarks());
    FlowMatrix s12 = harness.sampledCoreFlow(harness.benchmarks());

    // Baseline.
    core::DesignSpec base;
    auto base_design = designer.buildDesign(
        base, designer.buildTopology(base, uniform), uniform);

    auto make = [&](int modes, core::Assignment assignment,
                    const FlowMatrix &flow, const std::string &tag) {
        core::DesignSpec spec;
        spec.numModes = modes;
        spec.assignment = assignment;
        spec.weights = core::WeightSource::DesignFlow;
        spec.sampleTag = tag;
        auto topo = designer.buildTopology(spec, flow);
        return DesignPoint{spec.label(),
                           designer.buildDesign(spec, topo, flow)};
    };

    CsvWriter csv(harness.outPath("fig9_comm_aware.csv"));
    csv.writeRow({"panel", "benchmark", "design", "normalized_power"});

    for (int modes : {2, 4}) {
        std::cerr << "[fig9] building " << modes << "-mode designs...\n";
        std::vector<DesignPoint> points;
        points.push_back(make(modes, core::Assignment::DistanceBased,
                              s4, "4"));
        points.push_back(make(modes, core::Assignment::CommAware, s4,
                              "4"));
        points.push_back(make(modes, core::Assignment::DistanceBased,
                              s12, "12"));
        points.push_back(make(modes, core::Assignment::CommAware, s12,
                              "12"));

        std::string panel = modes == 2 ? "a" : "b";
        std::cout << "\n--- Figure 9" << panel << ": " << modes
                  << "-mode designs (normalized to 1M) ---\n";
        TextTable table;
        {
            std::vector<std::string> header = {"benchmark", "1M"};
            for (const auto &p : points)
                header.push_back(p.label);
            table.addRow(header);
        }

        std::map<std::string, std::vector<double>> norm;
        for (const auto &name : harness.benchmarks()) {
            const auto &trace = harness.trace(name);
            const auto &taboo = harness.mapping(name);
            double baseline =
                designer.evaluate(base_design, trace, identity).total();

            std::vector<std::string> cells = {name, "1.000"};
            for (const auto &p : points) {
                double rel = designer.evaluate(p.design, trace, taboo)
                                 .total() /
                             baseline;
                cells.push_back(TextTable::num(rel, 3));
                norm[p.label].push_back(rel);
                csv.cell(panel).cell(name).cell(p.label).cell(rel);
                csv.endRow();
            }
            table.addRow(cells);
        }

        std::vector<std::string> avg = {"hmean", "1.000"};
        for (const auto &p : points)
            avg.push_back(TextTable::num(harmonicMean(norm[p.label]),
                                         3));
        table.addRow(avg);
        table.print(std::cout);
    }

    std::cout << "\nPaper anchors: comm-aware (G) beats distance-based "
                 "(N) by ~7% at two\nmodes and ~10% at four; S12 "
                 "weights beat S4; the best 4-mode design\nreaches "
                 "~0.49 of base (51% saving) vs ~0.53 for two modes.\n";
    return 0;
}
