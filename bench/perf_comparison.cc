/**
 * @file
 * Performance comparison (Sections 2.1 and 5.1): per-benchmark runtime
 * and packet latency of the radix-256 mNoC crossbar versus the
 * clustered rNoC topology; the paper reports ~10% higher performance
 * for mNoC.
 */

#include <iostream>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader("Runtime: mNoC crossbar vs clustered rNoC",
                       "Table 1 / Section 5.1 performance claims");

    TextTable table;
    table.addRow({"benchmark", "mNoC ticks", "rNoC ticks", "speedup"});
    CsvWriter csv(harness.outPath("perf_comparison.csv"));
    csv.writeRow({"benchmark", "mnoc_ticks", "rnoc_ticks", "speedup"});

    std::vector<double> speedups;
    for (const auto &name : harness.benchmarks()) {
        const auto &mnoc_trace = harness.trace(name, "mnoc");
        const auto &rnoc_trace = harness.trace(name, "rnoc");
        double speedup =
            static_cast<double>(rnoc_trace.totalTicks) /
            static_cast<double>(mnoc_trace.totalTicks);
        speedups.push_back(speedup);
        table.addRow({name, std::to_string(mnoc_trace.totalTicks),
                      std::to_string(rnoc_trace.totalTicks),
                      TextTable::num(speedup, 3)});
        csv.cell(name)
            .cell(static_cast<long long>(mnoc_trace.totalTicks))
            .cell(static_cast<long long>(rnoc_trace.totalTicks))
            .cell(speedup);
        csv.endRow();
    }
    table.addRow({"geomean", "-", "-",
                  TextTable::num(geometricMean(speedups), 3)});
    table.print(std::cout);

    std::cout << "\nPaper anchor: the single-hop radix-256 crossbar is "
                 "~10% faster than the\nclustered topology (two router "
                 "crossings + shared ports).  Power\ntopologies do not "
                 "change latency: every mode has the same "
                 "time-of-flight.\n";
    return 0;
}
