/**
 * @file
 * Machine-readable writer for BENCH_parallel.json: the perf
 * trajectory of the parallel execution layer.  One record per
 * workload (yield Monte Carlo, QAP multi-start, SPLASH suite), each
 * carrying serial vs parallel wall-clock, the speedup, and whether
 * the parallel result was verified bit-identical to the serial one.
 *
 * Schema "mnoc-bench-parallel-v1":
 *
 *   {
 *     "schema": "mnoc-bench-parallel-v1",
 *     "threads": <int>,            // pool size used for parallel runs
 *     "sections": [
 *       {
 *         "name": <string>,        // workload identifier
 *         "work_items": <int>,     // draws / restarts / benchmarks
 *         "serial_seconds": <double>,
 *         "parallel_seconds": <double>,
 *         "speedup": <double>,     // serial / parallel
 *         "bit_identical": <bool>  // parallel result == serial result
 *       }, ...
 *     ]
 *   }
 */

#ifndef MNOC_BENCH_BENCH_JSON_HH
#define MNOC_BENCH_BENCH_JSON_HH

#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"

namespace mnoc::bench {

/** One serial-vs-parallel measurement of BENCH_parallel.json. */
struct ParallelRecord
{
    std::string name;
    long long workItems = 0;
    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    bool bitIdentical = false;

    double
    speedup() const
    {
        return parallelSeconds > 0.0 ? serialSeconds / parallelSeconds
                                     : 0.0;
    }
};

/** Minimal JSON string escaping (quotes, backslashes, control
 *  characters); section names are plain identifiers in practice. */
inline std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        if (ch == '"' || ch == '\\')
            out += '\\';
        if (static_cast<unsigned char>(ch) < 0x20) {
            out += "\\u00";
            const char *digits = "0123456789abcdef";
            out += digits[(ch >> 4) & 0xf];
            out += digits[ch & 0xf];
            continue;
        }
        out += ch;
    }
    return out;
}

/** Write @p records as BENCH_parallel.json-schema JSON to @p path. */
inline void
writeParallelJson(const std::string &path, int threads,
                  const std::vector<ParallelRecord> &records)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot write " + path);
    out.precision(6);
    out << std::fixed;
    out << "{\n";
    out << "  \"schema\": \"mnoc-bench-parallel-v1\",\n";
    out << "  \"threads\": " << threads << ",\n";
    out << "  \"sections\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &record = records[i];
        out << "    {\n";
        out << "      \"name\": \"" << jsonEscape(record.name)
            << "\",\n";
        out << "      \"work_items\": " << record.workItems << ",\n";
        out << "      \"serial_seconds\": " << record.serialSeconds
            << ",\n";
        out << "      \"parallel_seconds\": "
            << record.parallelSeconds << ",\n";
        out << "      \"speedup\": " << record.speedup() << ",\n";
        out << "      \"bit_identical\": "
            << (record.bitIdentical ? "true" : "false") << "\n";
        out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    fatalIf(!out.good(), "failed writing " + path);
}

} // namespace mnoc::bench

#endif // MNOC_BENCH_BENCH_JSON_HH
