/**
 * @file
 * Machine-readable writer for BENCH_parallel.json: the perf
 * trajectory of the parallel execution layer.  One record per
 * workload (yield Monte Carlo, QAP multi-start, SPLASH suite), each
 * carrying serial vs parallel wall-clock, the speedup, and whether
 * the parallel result was verified bit-identical to the serial one.
 * Every file also embeds the run manifest (seed, git SHA, thread
 * count, env knobs) so a stored artifact is reproducible.
 *
 * Schema "mnoc-bench-parallel-v3":
 *
 *   {
 *     "schema": "mnoc-bench-parallel-v3",
 *     "threads": <int>,            // pool size used for parallel runs
 *     "manifest": {                // provenance (common/manifest.hh)
 *       "seed": <int>, "git": <string>, "threads": <int>,
 *       "config": <string>, "env": { <name>: <string>, ... }
 *     },
 *     "sections": [
 *       {
 *         "name": <string>,        // workload identifier
 *         "work_items": <int>,     // draws / restarts / benchmarks
 *         "serial_seconds": <double>,
 *         "parallel_seconds": <double>,
 *         "speedup": <double>,     // serial / parallel
 *         "bit_identical": <bool>  // parallel result == serial result
 *       }, ...
 *     ]
 *   }
 *
 * v3 adds the "journal_overhead" section, which reuses the fields
 * with a twist: serial_seconds is the adaptive run with MNOC_JOURNAL
 * off (the hot path must pay only one relaxed atomic load per
 * emission point), parallel_seconds is the same run with the journal
 * recording, so speedup ~ 1 means journaling is cheap and the delta
 * over work_items (epochs) is the enabled-path cost per epoch.  Its
 * bit_identical additionally requires that the disabled run recorded
 * nothing and that the journal bytes are identical across pool
 * sizes.
 */

#ifndef MNOC_BENCH_BENCH_JSON_HH
#define MNOC_BENCH_BENCH_JSON_HH

#include <string>
#include <vector>

#include "common/io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/manifest.hh"

namespace mnoc::bench {

/** One serial-vs-parallel measurement of BENCH_parallel.json. */
struct ParallelRecord
{
    std::string name;
    long long workItems = 0;
    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    bool bitIdentical = false;

    double
    speedup() const
    {
        return parallelSeconds > 0.0 ? serialSeconds / parallelSeconds
                                     : 0.0;
    }
};

/** Write @p records as BENCH_parallel.json-schema JSON to @p path,
 *  stamped with @p manifest for provenance.  Every string field goes
 *  through escapeJson so hostile workload names cannot break the
 *  document. */
inline void
writeParallelJson(const std::string &path, int threads,
                  const RunManifest &manifest,
                  const std::vector<ParallelRecord> &records)
{
    FileWriter writer(path);
    auto &out = writer.stream();
    out.precision(6);
    out << std::fixed;
    out << "{\n";
    out << "  \"schema\": \"mnoc-bench-parallel-v3\",\n";
    out << "  \"threads\": " << threads << ",\n";
    out << "  \"manifest\": " << manifestJson(manifest) << ",\n";
    out << "  \"sections\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &record = records[i];
        out << "    {\n";
        out << "      \"name\": \"" << escapeJson(record.name)
            << "\",\n";
        out << "      \"work_items\": " << record.workItems << ",\n";
        out << "      \"serial_seconds\": " << record.serialSeconds
            << ",\n";
        out << "      \"parallel_seconds\": "
            << record.parallelSeconds << ",\n";
        out << "      \"speedup\": " << record.speedup() << ",\n";
        out << "      \"bit_identical\": "
            << (record.bitIdentical ? "true" : "false") << "\n";
        out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    writer.close();
}

} // namespace mnoc::bench

#endif // MNOC_BENCH_BENCH_JSON_HH
