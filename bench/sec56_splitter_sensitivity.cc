/**
 * @file
 * Section 5.6: sensitivity of the splitter design to the assumed
 * traffic weights.  The application-specific 2-mode topology with QAP
 * mapping is re-designed under uniform, 66/33, 33/66, S4-sampled, and
 * S12-sampled weightings; the paper finds <2% spread with all
 * variants saving >40%, because changes in weights are compensated by
 * changes in the splitter ratios.
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader("Splitter-design sensitivity to traffic weights",
                       "Section 5.6");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    FlowMatrix uniform(n, n, 1.0);
    auto identity = harness.identityMapping();

    core::DesignSpec base_spec; // 1M
    auto base_design = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, uniform), uniform);

    std::cerr << "[sec56] sampling design flows...\n";
    FlowMatrix s4 = harness.sampledCoreFlow(
        workloads::sampledBenchmarks());
    FlowMatrix s12 = harness.sampledCoreFlow(harness.benchmarks());

    // Equation 1 weights are scalar per-mode traffic fractions; the
    // sampled variants measure those fractions by projecting the
    // sampled average traffic onto the app's topology.
    auto fractions_from = [&](const core::GlobalPowerTopology &topo,
                              const FlowMatrix &flow) {
        std::vector<double> w(2, 0.0);
        for (int src = 0; src < n; ++src) {
            const auto &local = topo.local(src);
            for (int dst = 0; dst < n; ++dst)
                if (dst != src)
                    w[local.modeOfDest[dst]] += flow(src, dst);
        }
        double total = w[0] + w[1];
        if (total <= 0.0)
            return std::vector<double>{0.5, 0.5};
        return std::vector<double>{w[0] / total, w[1] / total};
    };

    struct Variant
    {
        std::string label;
        core::WeightSource source;
        std::vector<double> fractions;
        const FlowMatrix *sampleFlow;
    };
    std::vector<Variant> variants = {
        {"U", core::WeightSource::Uniform, {}, nullptr},
        {"W66/33", core::WeightSource::Fractions, {0.66, 0.34},
         nullptr},
        {"W33/66", core::WeightSource::Fractions, {0.34, 0.66},
         nullptr},
        {"S4", core::WeightSource::Fractions, {}, &s4},
        {"S12", core::WeightSource::Fractions, {}, &s12},
    };

    std::map<std::string, std::vector<double>> norm;
    for (const auto &name : harness.benchmarks()) {
        const auto &trace = harness.trace(name);
        const auto &taboo = harness.mapping(name);
        double base =
            designer.evaluate(base_design, trace, identity).total();

        // App-specific topology from this benchmark's own traffic.
        FlowMatrix own = permuteFlow(harness.threadFlow(name), taboo);
        core::DesignSpec topo_spec;
        topo_spec.numModes = 2;
        topo_spec.assignment = core::Assignment::CommAware;
        auto topo = designer.buildTopology(topo_spec, own);

        for (const auto &variant : variants) {
            core::DesignSpec spec = topo_spec;
            spec.weights = variant.source;
            spec.fractions =
                variant.sampleFlow
                    ? fractions_from(topo, *variant.sampleFlow)
                    : variant.fractions;
            auto design = designer.buildDesign(spec, topo, own);
            double rel =
                designer.evaluate(design, trace, taboo).total() / base;
            norm[variant.label].push_back(rel);
        }
    }

    TextTable table;
    table.addRow({"weighting", "normalized power (hmean)",
                  "reduction"});
    CsvWriter csv(harness.outPath("sec56_splitter_sensitivity.csv"));
    csv.writeRow({"weighting", "normalized_power", "reduction"});
    std::vector<double> hmeans;
    for (const auto &variant : variants) {
        double h = harmonicMean(norm[variant.label]);
        hmeans.push_back(h);
        table.addRow({variant.label, TextTable::num(h, 4),
                      TextTable::num(100.0 * (1.0 - h), 1) + "%"});
        csv.cell(variant.label).cell(h).cell(1.0 - h);
        csv.endRow();
    }
    table.print(std::cout);

    double spread = maxOf(hmeans) - minOf(hmeans);
    std::cout << "\nspread across weightings: "
              << TextTable::num(100.0 * spread, 2)
              << " percentage points\n"
              << "Paper anchor: minimal variation (within ~2%), all "
                 "weightings saving >40%;\nweight changes are absorbed "
                 "by compensating splitter ratios.\n";
    return 0;
}
