/**
 * @file
 * Extension ablation (Sections 4.3 and 7): how many power modes are
 * worth building?  Sweeps the mode count for distance-based and
 * communication-aware designs (with QAP mapping) and compares against
 * the *oracle dynamic* lower bound -- a dedicated mode per
 * destination, i.e. every packet pays exactly the geometric
 * attenuation to its destination, which is what the paper's
 * future-work "dynamic power topologies" could at best achieve.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

namespace {

/**
 * Oracle-dynamic average power: per flit, the source pays the
 * per-destination minimum pmin * A(s, d) (plus unchanged O/E and
 * electrical terms are omitted -- this reports the source component
 * lower bound against the designs' source component).
 */
double
oracleSourcePower(const bench::Harness &harness, const sim::Trace &t)
{
    const auto &xbar = harness.crossbar();
    const auto &optics_params = harness.deviceParams();
    double pmin = optics_params.pminAtTap().watts();
    double flit_time = 1.0 / harness.powerParams().net.clockHz;
    double duration = static_cast<double>(t.totalTicks) /
                      harness.powerParams().net.clockHz;

    double energy = 0.0;
    int n = static_cast<int>(t.flits.rows());
    for (int s = 0; s < n; ++s)
        for (int d = 0; d < n; ++d) {
            if (s == d || t.flits(s, d) == 0)
                continue;
            double drive = pmin *
                           xbar.chain(s).tapAttenuation(d).value() /
                           optics_params.qdLedEfficiency;
            energy += static_cast<double>(t.flits(s, d)) * flit_time *
                      drive;
        }
    return energy / duration;
}

} // namespace

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Mode-count sweep vs the oracle-dynamic lower bound",
        "Sections 4.3/7 (extension)");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    FlowMatrix uniform(n, n, 1.0);
    auto identity = harness.identityMapping();

    core::DesignSpec base_spec; // 1M
    auto base_design = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, uniform), uniform);

    const std::vector<int> mode_counts = {2, 4, 8, 16};
    TextTable table;
    {
        std::vector<std::string> header = {"design"};
        for (int m : mode_counts)
            header.push_back(std::to_string(m) + "M");
        table.addRow(header);
    }
    CsvWriter csv(harness.outPath("ablation_mode_count.csv"));
    csv.writeRow({"design", "modes", "normalized_source_power"});

    // Normalized source power, harmonic-mean over the suite.
    auto sweep = [&](core::Assignment assignment,
                     const std::string &label) {
        std::vector<std::string> cells = {label};
        for (int modes : mode_counts) {
            std::cerr << "[modes] " << label << " " << modes
                      << "M...\n";
            std::vector<double> norm;
            for (const auto &name : harness.benchmarks()) {
                const auto &trace = harness.trace(name);
                const auto &taboo = harness.mapping(name);
                double base = designer
                                  .evaluate(base_design, trace,
                                            identity)
                                  .source;

                FlowMatrix own = permuteFlow(harness.threadFlow(name),
                                             taboo);
                core::DesignSpec spec;
                spec.numModes = modes;
                spec.assignment = assignment;
                spec.weights = core::WeightSource::DesignFlow;
                auto design = designer.buildDesign(
                    spec, designer.buildTopology(spec, own), own);
                norm.push_back(
                    designer.evaluate(design, trace, taboo).source /
                    base);
            }
            double h = harmonicMean(norm);
            cells.push_back(TextTable::num(h, 3));
            csv.cell(label)
                .cell(static_cast<long long>(modes))
                .cell(h);
            csv.endRow();
        }
        table.addRow(cells);
    };

    sweep(core::Assignment::DistanceBased, "distance-based (N)");
    sweep(core::Assignment::CommAware, "comm-aware (G)");

    // Semi-dynamic: static splitters, per-packet drive -- equivalent
    // to a static design with one mode per destination (M = N-1),
    // the practical form of the paper's "dynamic power topologies"
    // with current-controlled QD LEDs.
    {
        std::cerr << "[modes] semi-dynamic (M = N-1)...\n";
        std::vector<double> norm;
        for (const auto &name : harness.benchmarks()) {
            const auto &trace = harness.trace(name);
            const auto &taboo = harness.mapping(name);
            double base =
                designer.evaluate(base_design, trace, identity).source;

            FlowMatrix own = permuteFlow(harness.threadFlow(name),
                                         taboo);
            // One mode per destination.  Nested modes force the
            // alphas to be monotone along the chosen order, and the
            // unconstrained optimum alpha_d ~ sqrt(w_d / c_d) is
            // feasible exactly when destinations are ordered by
            // w_d / c_d (flow x transmission) descending -- so that
            // order gives the globally optimal per-destination design.
            Matrix<int> modes(n, n, 0);
            for (int s = 0; s < n; ++s) {
                const auto &chain = harness.crossbar().chain(s);
                std::vector<int> order;
                for (int d = 0; d < n; ++d)
                    if (d != s)
                        order.push_back(d);
                auto ratio = [&](int d) {
                    return own(s, d) /
                           chain.tapAttenuation(d).value();
                };
                std::sort(order.begin(), order.end(),
                          [&](int a, int b) {
                              double ra = ratio(a);
                              double rb = ratio(b);
                              if (ra != rb)
                                  return ra > rb;
                              return chain.tapAttenuation(a) <
                                     chain.tapAttenuation(b);
                          });
                for (int k = 0;
                     k < static_cast<int>(order.size()); ++k)
                    modes(s, order[k]) = k;
            }
            auto topo = core::GlobalPowerTopology::fromModeMatrix(
                modes, n - 1);
            auto design = designer.model().designFor(topo, own);
            norm.push_back(
                designer.evaluate(design, trace, taboo).source /
                base);
        }
        double h = harmonicMean(norm);
        std::vector<std::string> cells = {"semi-dynamic (M=N-1)"};
        for (std::size_t i = 0; i < mode_counts.size(); ++i)
            cells.push_back(TextTable::num(h, 3));
        table.addRow(cells);
        csv.cell("semidynamic").cell(0LL).cell(h);
        csv.endRow();
    }

    // Oracle dynamic lower bound (mode per destination).
    {
        std::vector<double> norm;
        for (const auto &name : harness.benchmarks()) {
            const auto &trace = harness.trace(name);
            const auto &taboo = harness.mapping(name);
            sim::Trace mapped = sim::mapTrace(trace, taboo);
            double base =
                designer.evaluate(base_design, trace, identity).source;
            norm.push_back(oracleSourcePower(harness, mapped) / base);
        }
        double h = harmonicMean(norm);
        std::vector<std::string> cells = {"oracle dynamic"};
        for (std::size_t i = 0; i < mode_counts.size(); ++i)
            cells.push_back(TextTable::num(h, 3));
        table.addRow(cells);
        csv.cell("oracle").cell(0LL).cell(h);
        csv.endRow();
    }

    table.print(std::cout);
    std::cout << "\nReading: returns diminish quickly past four modes "
                 "-- the paper's choice\nof M <= 4 captures most of "
                 "the statically reachable benefit; the gap to\nthe "
                 "oracle row is what dynamic power topologies "
                 "(future work, Section 7)\ncould still recover.\n";
    return 0;
}
