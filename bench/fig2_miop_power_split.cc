/**
 * @file
 * Figure 2: percentage of total mNoC power in the QD LED source vs the
 * O/E conversion as the photodetector mIOP sweeps from 1 uW to 10 uW.
 *
 * A low mIOP needs high-gain (power-hungry) photoreceivers but cheap
 * sources; a high mIOP shifts the budget into the QD LEDs.  The paper
 * picks 10 uW, where the source is ~80% of total power and becomes the
 * optimization target.
 */

#include <iostream>

#include "common/csv.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader("QD LED vs O/E power share vs photodetector mIOP",
                       "Figure 2");

    int n = harness.numCores();
    core::PowerParams power = harness.powerParams();

    TextTable table;
    table.addRow({"mIOP (uW)", "QD_LED (%)", "O/E (%)", "QD_LED (W)",
                  "O/E (W)"});
    CsvWriter csv(harness.outPath("fig2_miop_power_split.csv"));
    csv.writeRow({"miop_uw", "qdled_pct", "oe_pct", "qdled_w", "oe_w"});

    for (int miop_uw = 1; miop_uw <= 10; ++miop_uw) {
        // Chromophore loss tracks mIOP (Table 3: 5 uW at 10 uW mIOP).
        optics::DeviceParams params = harness.deviceParams();
        params.photodetectorMiop = WattPower(miop_uw * microWatt);
        params.chromophoreLoss = WattPower(0.5 * miop_uw * microWatt);

        optics::SerpentineLayout layout{n,
                                        optics::defaultWaveguideLength};
        optics::OpticalCrossbar xbar(layout, params);

        // All sources broadcasting continuously: QD LED electrical
        // drive vs the O/E power of all lit receivers.
        double qdled = 0.0;
        for (int s = 0; s < n; ++s)
            qdled += (xbar.broadcastPower(s) /
                      params.qdLedEfficiency)
                         .watts();
        double oe =
            static_cast<double>(n) * (n - 1) *
            power.oePowerPerReceiver(params.photodetectorMiop).watts();

        double total = qdled + oe;
        table.addRow({std::to_string(miop_uw),
                      TextTable::num(100.0 * qdled / total, 1),
                      TextTable::num(100.0 * oe / total, 1),
                      TextTable::num(qdled, 2), TextTable::num(oe, 2)});
        csv.cell(static_cast<long long>(miop_uw))
            .cell(100.0 * qdled / total)
            .cell(100.0 * oe / total)
            .cell(qdled)
            .cell(oe);
        csv.endRow();
    }

    table.print(std::cout);
    std::cout << "\nPaper anchor: at 10 uW mIOP the QD LED source is "
                 "~80% of total power;\nat 1 uW the O/E conversion "
                 "dominates (crossover near the middle of the sweep).\n";
    return 0;
}
