/**
 * @file
 * Figure 10: total NoC energy relative to rNoC for the four designs --
 * rNoC, base mNoC (1M), clustered mNoC, and the best power-topology
 * mNoC (4M_T_G_S12) -- broken into ring heating, source power,
 * O/E + E/O, and electrical link/router energy.  Energy couples each
 * design's power with its own network's runtime.
 */

#include <iostream>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/energy_ledger.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader("Total NoC energy relative to rNoC",
                       "Figure 10");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    auto identity = harness.identityMapping();
    FlowMatrix uniform(n, n, 1.0);

    core::RnocPowerModel rnoc_model{core::RnocParams{}};
    core::CmnocPowerModel cmnoc_model;

    core::DesignSpec base_spec; // 1M
    auto base_design = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, uniform), uniform);

    std::cerr << "[fig10] building 4M_T_G_S12...\n";
    FlowMatrix s12 = harness.sampledCoreFlow(harness.benchmarks());
    core::DesignSpec pt_spec;
    pt_spec.numModes = 4;
    pt_spec.mapping = core::MappingMethod::Taboo;
    pt_spec.assignment = core::Assignment::CommAware;
    pt_spec.weights = core::WeightSource::DesignFlow;
    pt_spec.sampleTag = "12";
    auto pt_design = designer.buildDesign(
        pt_spec, designer.buildTopology(pt_spec, s12), s12);

    // Accumulate per-category energy (J) across the suite.
    struct Energy
    {
        double ring = 0.0, source = 0.0, oe = 0.0, electrical = 0.0;
        double
        total() const
        {
            return ring + source + oe + electrical;
        }
    };
    Energy rnoc, mnoc, cmnoc, pt;
    double clock = harness.powerParams().net.clockHz;

    auto add = [&](Energy &acc, const core::PowerBreakdown &power,
                   noc::Tick ticks) {
        double seconds = static_cast<double>(ticks) / clock;
        acc.ring += (power.ringHeating + power.laser) * seconds;
        acc.source += power.source * seconds;
        acc.oe += power.oe * seconds;
        acc.electrical += power.electrical * seconds;
    };

    // mNoC rows read their power from the energy-attribution ledger
    // (core/energy_ledger.hh), so this figure and `mnocpt report`
    // can never disagree about the same design + trace.  The
    // delivered-fraction tally below rides along from the ledger's
    // loss walk.
    double optical_injected_j = 0.0;
    double optical_delivered_j = 0.0;
    auto ledgerPower = [&](const core::MnocDesign &design,
                           const sim::Trace &trace,
                           const std::vector<int> &map) {
        auto ledger = designer.buildLedger(design, trace, map);
        for (int s = 0; s < ledger.numSources(); ++s) {
            for (int m = 0; m < ledger.numModes(); ++m) {
                double tx = 0.0;
                for (std::size_t e = 0; e < ledger.numEpochs(); ++e)
                    tx += ledger.cell(s, m, e).txSeconds;
                const auto &loss = ledger.loss(s, m);
                optical_injected_j += tx * loss.injected;
                optical_delivered_j += tx * loss.delivered;
            }
        }
        return ledger.averagePower();
    };

    for (const auto &name : harness.benchmarks()) {
        const auto &mnoc_trace = harness.trace(name, "mnoc");
        const auto &rnoc_trace = harness.trace(name, "rnoc");
        const auto &taboo = harness.mapping(name);

        add(rnoc, rnoc_model.evaluate(rnoc_trace),
            rnoc_trace.totalTicks);
        add(cmnoc, cmnoc_model.evaluate(rnoc_trace),
            rnoc_trace.totalTicks);
        add(mnoc, ledgerPower(base_design, mnoc_trace, identity),
            mnoc_trace.totalTicks);
        add(pt, ledgerPower(pt_design, mnoc_trace, taboo),
            mnoc_trace.totalTicks);
    }

    double norm = rnoc.total();
    TextTable table;
    table.addRow({"design", "ring+laser", "source", "O/E&E/O",
                  "elink+router", "total"});
    CsvWriter csv(harness.outPath("fig10_energy_breakdown.csv"));
    csv.writeRow({"design", "ring_laser", "source", "oe",
                  "elink_router", "total"});
    auto row = [&](const std::string &label, const Energy &e) {
        table.addRow({label, TextTable::num(e.ring / norm, 3),
                      TextTable::num(e.source / norm, 3),
                      TextTable::num(e.oe / norm, 3),
                      TextTable::num(e.electrical / norm, 3),
                      TextTable::num(e.total() / norm, 3)});
        csv.cell(label)
            .cell(e.ring / norm)
            .cell(e.source / norm)
            .cell(e.oe / norm)
            .cell(e.electrical / norm)
            .cell(e.total() / norm);
        csv.endRow();
    };
    row("rNoC", rnoc);
    row("mNoC (1M)", mnoc);
    row("c_mNoC", cmnoc);
    row("PT_mNoC (4M_T_G_S12)", pt);
    table.print(std::cout);

    if (optical_injected_j > 0.0)
        std::cout << "\nledger optical accounting: "
                  << TextTable::num(100.0 * optical_delivered_j /
                                        optical_injected_j, 2)
                  << "% of injected optical energy reaches "
                     "photodetectors\n";

    std::cout << "\nPaper anchors: base mNoC ~0.57 of rNoC energy, "
                 "c_mNoC ~0.21,\nPT_mNoC ~0.28 (72% reduction); rNoC is "
                 "dominated by ring heating.\n";
    return 0;
}
