/**
 * @file
 * Scalability ablation (Section 2.1): broadcast drive power per source
 * as the crossbar radix and waveguide loss scale.  The paper claims an
 * mNoC crossbar "can easily scale to more than radix-256 even with a
 * 2 dB/cm loss waveguide"; this sweep quantifies that claim and shows
 * where the exponential propagation term takes over.
 */

#include <iostream>
#include <vector>

#include "common/csv.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Broadcast power vs crossbar radix and waveguide loss",
        "Section 2.1 scalability claim (extension)");

    const std::vector<double> losses = {0.5, 1.0, 2.0};
    const std::vector<int> radixes = {64, 128, 256, 512};

    TextTable table;
    {
        std::vector<std::string> header = {"radix",
                                           "waveguide length"};
        for (double loss : losses)
            header.push_back(TextTable::num(loss, 1) +
                             " dB/cm (W elec)");
        table.addRow(header);
    }
    CsvWriter csv(harness.outPath("ablation_waveguide_loss.csv"));
    csv.writeRow({"radix", "length_m", "loss_db_per_cm",
                  "worst_source_electrical_w"});

    for (int radix : radixes) {
        // Die area fixed: serpentine length grows with sqrt of the
        // node count beyond the 256-node/18 cm reference point only
        // weakly; model length as proportional to node count along
        // the same route pitch.
        Meters length = optics::defaultWaveguideLength *
                        static_cast<double>(radix) / 256.0;
        std::vector<std::string> cells = {
            std::to_string(radix),
            TextTable::num(length.centimeters(), 1) + " cm"};
        for (double loss : losses) {
            optics::DeviceParams params = harness.deviceParams();
            params.waveguideLossPerCm = DecibelLoss(loss);
            optics::SerpentineLayout layout{radix, length};
            // Worst case: the end source must span the whole guide.
            optics::SplitterChain chain(layout, params, 0);
            std::vector<double> targets(radix,
                                        params.pminAtTap().watts());
            targets[0] = 0.0;
            double electrical =
                (chain.design(targets).injectedPower /
                 params.qdLedEfficiency)
                    .watts();
            cells.push_back(TextTable::num(electrical, 2));
            csv.cell(static_cast<long long>(radix))
                .cell(length.meters())
                .cell(loss)
                .cell(electrical);
            csv.endRow();
        }
        table.addRow(cells);
    }
    table.print(std::cout);

    std::cout << "\nReading: at 1 dB/cm the radix-256 end source needs "
                 "~1 W electrical and\nradix-512 stays within an order "
                 "of magnitude; the exponential propagation\nterm only "
                 "explodes at 2 dB/cm x 36 cm.  Power topologies and "
                 "clustered\nlayouts (which shorten the guide) stretch "
                 "this further -- the basis of the\npaper's \"more "
                 "than radix-256\" scalability claim.\n";
    return 0;
}
