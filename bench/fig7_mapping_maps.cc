/**
 * @file
 * Figure 7: water_spatial communication matrices before/after taboo
 * thread mapping, and the corresponding 2-mode power-topology maps.
 * Emits four PGM heatmaps plus CSV matrices, and prints the summary
 * statistics (flow-weighted communication distance, low-mode traffic
 * coverage).
 */

#include <cmath>
#include <iostream>

#include "common/csv.hh"
#include "common/pgm.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

namespace {

/** Flow-weighted mean |src - dst| index distance. */
double
weightedDistance(const FlowMatrix &flow)
{
    double dist = 0.0;
    double total = 0.0;
    int n = static_cast<int>(flow.rows());
    for (int s = 0; s < n; ++s)
        for (int d = 0; d < n; ++d) {
            dist += flow(s, d) * std::abs(s - d);
            total += flow(s, d);
        }
    return total > 0.0 ? dist / total : 0.0;
}

/** Flow-weighted mean source distance from the waveguide middle
 *  (Figure 7's "hot traffic clusters around the middle nodes"). */
double
weightedCenterDistance(const FlowMatrix &flow)
{
    double dist = 0.0;
    double total = 0.0;
    int n = static_cast<int>(flow.rows());
    double center = (n - 1) / 2.0;
    for (int s = 0; s < n; ++s) {
        double row = flow.rowTotal(s);
        dist += row * std::fabs(s - center);
        total += row;
    }
    return total > 0.0 ? dist / total : 0.0;
}

/** Fraction of traffic that the low mode of a 2-mode design carries. */
double
lowModeCoverage(const core::GlobalPowerTopology &topo,
                const FlowMatrix &flow)
{
    double low = 0.0;
    double total = 0.0;
    for (int s = 0; s < topo.numNodes; ++s)
        for (int d = 0; d < topo.numNodes; ++d) {
            if (s == d)
                continue;
            total += flow(s, d);
            if (topo.local(s).modeOfDest[d] == 0)
                low += flow(s, d);
        }
    return total > 0.0 ? low / total : 0.0;
}

/** Render a 2-mode assignment as a matrix (1 = low mode = dark). */
FlowMatrix
modeMap(const core::GlobalPowerTopology &topo)
{
    FlowMatrix map(topo.numNodes, topo.numNodes, 0.0);
    for (int s = 0; s < topo.numNodes; ++s)
        for (int d = 0; d < topo.numNodes; ++d)
            if (d != s && topo.local(s).modeOfDest[d] == 0)
                map(s, d) = 1.0;
    return map;
}

void
dumpMatrix(const std::string &path, const FlowMatrix &m)
{
    CsvWriter csv(path);
    int n = static_cast<int>(m.rows());
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d)
            csv.cell(m(s, d));
        csv.endRow();
    }
}

} // namespace

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "water_spatial thread mapping and 2-mode topology maps",
        "Figure 7");

    const auto &designer = harness.designer();
    FlowMatrix naive_flow = harness.threadFlow("water_s");
    const auto &taboo = harness.mapping("water_s");
    FlowMatrix mapped_flow = permuteFlow(naive_flow, taboo);

    core::CommAwareConfig config;
    config.numModes = 2;
    auto naive_topo = core::commAwareTopology(harness.crossbar(),
                                              naive_flow, config);
    auto mapped_topo = core::commAwareTopology(harness.crossbar(),
                                               mapped_flow, config);

    // Figure 7a/7b: communication matrices.
    writePgmHeatmap(harness.outPath("fig7a_comm_naive.pgm"),
                    naive_flow);
    writePgmHeatmap(harness.outPath("fig7b_comm_qap.pgm"), mapped_flow);
    dumpMatrix(harness.outPath("fig7a_comm_naive.csv"), naive_flow);
    dumpMatrix(harness.outPath("fig7b_comm_qap.csv"), mapped_flow);
    // Figure 7c/7d: low-mode membership maps.
    writePgmHeatmap(harness.outPath("fig7c_modes_naive.pgm"),
                    modeMap(naive_topo), false);
    writePgmHeatmap(harness.outPath("fig7d_modes_qap.pgm"),
                    modeMap(mapped_topo), false);

    TextTable table;
    table.addRow({"metric", "naive", "QAP (taboo)"});
    table.addRow({"flow-weighted |src-dst| distance",
                  TextTable::num(weightedDistance(naive_flow), 1),
                  TextTable::num(weightedDistance(mapped_flow), 1)});
    table.addRow({"flow-weighted distance from middle",
                  TextTable::num(weightedCenterDistance(naive_flow),
                                 1),
                  TextTable::num(weightedCenterDistance(mapped_flow),
                                 1)});
    table.addRow({"traffic in low power mode (2M_G)",
                  TextTable::num(lowModeCoverage(naive_topo,
                                                 naive_flow),
                                 3),
                  TextTable::num(lowModeCoverage(mapped_topo,
                                                 mapped_flow),
                                 3)});

    // Power of the matched designs.
    auto naive_design = designer.model().designFor(naive_topo,
                                                   naive_flow);
    auto mapped_design = designer.model().designFor(mapped_topo,
                                                    mapped_flow);
    const auto &trace = harness.trace("water_s");
    double p_naive =
        designer.evaluate(naive_design, trace,
                          harness.identityMapping())
            .total();
    double p_mapped =
        designer.evaluate(mapped_design, trace, taboo).total();
    table.addRow({"2M_G power (W)", TextTable::num(p_naive, 2),
                  TextTable::num(p_mapped, 2)});

    // The single-mode design is where the middle-clustering pays:
    // broadcast drive power depends on the source's position.
    core::DesignSpec base_spec; // 1M
    FlowMatrix uniform(harness.numCores(), harness.numCores(), 1.0);
    auto base = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, uniform),
        uniform);
    table.addRow(
        {"1M power (W)",
         TextTable::num(designer
                            .evaluate(base, trace,
                                      harness.identityMapping())
                            .total(),
                        2),
         TextTable::num(designer.evaluate(base, trace, taboo).total(),
                        2)});
    table.print(std::cout);

    std::cout << "\nHeatmaps written to " << harness.outDir()
              << "/fig7{a,b,c,d}_*.pgm (dark = high"
                 " intensity / low mode).\n"
              << "Paper anchor: after taboo, hot traffic clusters near "
                 "the middle of the\nserpentine and the low-mode map "
                 "tracks the communication pattern,\nincluding "
                 "non-contiguous destinations.\n";
    return 0;
}
