/**
 * @file
 * Serial-vs-parallel smoke benchmark of the deterministic parallel
 * execution layer (DESIGN.md §9): times the Monte Carlo yield
 * analysis, the QAP multi-start taboo search, the SPLASH suite
 * simulation, and the streamed energy-ledger build (whole-file load
 * on one thread vs sharded TraceReader fan-out on the configured
 * pool) on a pool of one and on the configured pool, verifies the
 * parallel results are bit-identical to the serial ones, and writes
 * BENCH_parallel.json (schema in bench/bench_json.hh) so the perf
 * trajectory accumulates run over run.  The streaming record's
 * workItems is the epoch-cell (message) count, so messages/sec for
 * either path is workItems / *Seconds.  The journal_overhead record
 * pins the decision journal's cost contract: disabled-path overhead
 * ~0 and an enabled-path cost per epoch, with bit-identical journal
 * bytes across pool sizes.
 *
 * Scale knobs: MNOC_THREADS sets the parallel pool; the suite
 * section honors MNOC_BENCH_CORES / MNOC_BENCH_OPS but defaults to a
 * smoke-sized 64 cores x 500 ops when they are unset (unlike the
 * figure binaries, which default to the paper scale).
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <utility>

#include "bench_json.hh"
#include "common/journal.hh"
#include "common/manifest.hh"
#include "common/prng.hh"
#include "common/thread_pool.hh"
#include "core/designer.hh"
#include "core/energy_ledger.hh"
#include "faults/yield.hh"
#include "harness.hh"
#include "qap/multi_start.hh"
#include "runtime/adaptive_controller.hh"
#include "sim/trace.hh"
#include "sim/trace_stream.hh"

using namespace mnoc;

namespace {

double
seconds(std::chrono::steady_clock::time_point begin,
        std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/** Bit-exact comparison of two yield reports (every draw included). */
bool
sameReport(const faults::YieldReport &a, const faults::YieldReport &b)
{
    if (a.yield != b.yield || a.trials != b.trials ||
        a.marginMean.dB() != b.marginMean.dB() ||
        a.marginMin.dB() != b.marginMin.dB() ||
        a.marginP5.dB() != b.marginP5.dB() ||
        a.berWorstMean != b.berWorstMean ||
        a.berWorstMax != b.berWorstMax ||
        a.marginFailuresByMode != b.marginFailuresByMode ||
        a.leakFailuresByMode != b.leakFailuresByMode ||
        a.draws.size() != b.draws.size())
        return false;
    for (std::size_t i = 0; i < a.draws.size(); ++i) {
        if (a.draws[i].pass != b.draws[i].pass ||
            a.draws[i].worstMargin.dB() !=
                b.draws[i].worstMargin.dB() ||
            a.draws[i].worstLeak.dB() != b.draws[i].worstLeak.dB() ||
            a.draws[i].worstBitErrorRate !=
                b.draws[i].worstBitErrorRate ||
            a.draws[i].marginFailures != b.draws[i].marginFailures ||
            a.draws[i].leakFailures != b.draws[i].leakFailures)
            return false;
    }
    return true;
}

bench::ParallelRecord
benchYield(ThreadPool &serial, ThreadPool &parallel)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kNodes = 64;
    constexpr int kTrials = 600;

    optics::SerpentineLayout layout(kNodes, Meters(0.08));
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar(layout, params);
    core::Designer designer(xbar);

    core::DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = core::Assignment::DistanceBased;
    spec.weights = core::WeightSource::Uniform;
    FlowMatrix flow(kNodes, kNodes, 1.0);
    for (int i = 0; i < kNodes; ++i)
        flow(i, i) = 0.0;
    auto topology = designer.buildTopology(spec, flow);
    auto design =
        designer.buildDesign(spec, topology, flow, DecibelLoss(1.5));

    faults::VariationSpec variation;
    faults::YieldCriteria criteria;

    auto t0 = Clock::now();
    auto serial_report =
        faults::analyzeYield(layout, params, design.sources,
                             variation, kTrials, 7, criteria,
                             &serial);
    auto t1 = Clock::now();
    auto parallel_report =
        faults::analyzeYield(layout, params, design.sources,
                             variation, kTrials, 7, criteria,
                             &parallel);
    auto t2 = Clock::now();

    bench::ParallelRecord record;
    record.name = "yield_monte_carlo";
    record.workItems = kTrials;
    record.serialSeconds = seconds(t0, t1);
    record.parallelSeconds = seconds(t1, t2);
    record.bitIdentical = sameReport(serial_report, parallel_report);
    return record;
}

bench::ParallelRecord
benchQapMultiStart(ThreadPool &serial, ThreadPool &parallel)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kSize = 48;
    constexpr int kRestarts = 8;

    Prng rng(11);
    FlowMatrix flow(kSize, kSize, 0.0);
    FlowMatrix dist(kSize, kSize, 0.0);
    for (int i = 0; i < kSize; ++i) {
        for (int j = i + 1; j < kSize; ++j) {
            flow(i, j) = flow(j, i) = rng.uniform() * 10.0;
            dist(i, j) = dist(j, i) = rng.uniform() * 5.0;
        }
    }
    qap::QapInstance instance(std::move(flow), std::move(dist));
    qap::TabooParams params;
    params.iterations = 20000;

    auto t0 = Clock::now();
    auto serial_result = qap::multiStartTaboo(
        instance, instance.identity(), params, kRestarts, &serial);
    auto t1 = Clock::now();
    auto parallel_result = qap::multiStartTaboo(
        instance, instance.identity(), params, kRestarts, &parallel);
    auto t2 = Clock::now();

    bench::ParallelRecord record;
    record.name = "qap_multi_start_taboo";
    record.workItems = kRestarts;
    record.serialSeconds = seconds(t0, t1);
    record.parallelSeconds = seconds(t1, t2);
    record.bitIdentical =
        serial_result.perm == parallel_result.perm &&
        serial_result.cost == parallel_result.cost;
    return record;
}

bench::ParallelRecord
benchSuite(ThreadPool &serial, ThreadPool &parallel,
           const std::string &scratch)
{
    using Clock = std::chrono::steady_clock;

    // Fresh cache directories so both runs really simulate.
    std::string serial_dir = scratch + "/serial";
    std::string parallel_dir = scratch + "/parallel";

    setenv("MNOC_BENCH_DIR", serial_dir.c_str(), 1);
    bench::Harness serial_harness;
    auto t0 = Clock::now();
    serial_harness.simulateSuite("mnoc", &serial);
    auto t1 = Clock::now();

    setenv("MNOC_BENCH_DIR", parallel_dir.c_str(), 1);
    bench::Harness parallel_harness;
    auto t2 = Clock::now();
    parallel_harness.simulateSuite("mnoc", &parallel);
    auto t3 = Clock::now();

    bool identical = true;
    for (const auto &name : serial_harness.benchmarks()) {
        const auto &a = serial_harness.trace(name);
        const auto &b = parallel_harness.trace(name);
        identical = identical && a.flits == b.flits &&
                    a.packets == b.packets &&
                    a.totalTicks == b.totalTicks;
    }

    bench::ParallelRecord record;
    record.name = "splash_suite_simulation";
    record.workItems = static_cast<long long>(
        serial_harness.benchmarks().size());
    record.serialSeconds = seconds(t0, t1);
    record.parallelSeconds = seconds(t2, t3);
    record.bitIdentical = identical;
    return record;
}

/** Bit-exact comparison of two energy ledgers, cell by cell. */
bool
sameLedger(const core::EnergyLedger &a, const core::EnergyLedger &b)
{
    if (a.numSources() != b.numSources() ||
        a.numModes() != b.numModes() ||
        a.numEpochs() != b.numEpochs() ||
        a.durationSeconds() != b.durationSeconds() ||
        a.messagesPerEpoch() != b.messagesPerEpoch())
        return false;
    for (int s = 0; s < a.numSources(); ++s) {
        for (int m = 0; m < a.numModes(); ++m) {
            for (std::size_t e = 0; e < a.numEpochs(); ++e) {
                const auto &x = a.cell(s, m, e);
                const auto &y = b.cell(s, m, e);
                if (x.flits != y.flits ||
                    x.txSeconds != y.txSeconds ||
                    x.sourceEnergy != y.sourceEnergy ||
                    x.oeEnergy != y.oeEnergy ||
                    x.electricalEnergy != y.electricalEnergy)
                    return false;
            }
        }
    }
    return true;
}

/**
 * The streaming section: build one deterministic epoch-carrying trace,
 * write it both as a single v3 file and as a sharded directory, then
 * race the whole-file path (loadTrace + in-memory ledger build, the
 * pre-streaming pipeline) against the streamed path (TraceReader shard
 * fan-out across the parallel pool).  workItems is the total epoch-
 * cell count, so messages/sec falls out of the record directly.
 */
bench::ParallelRecord
benchStreamedLedger(ThreadPool &parallel, const std::string &scratch)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kNodes = 64;
    constexpr std::size_t kEpochs = 4096;
    constexpr std::uint64_t kMsgsPerEpoch = 128;
    constexpr std::size_t kEpochsPerShard = 64;
    constexpr std::uint64_t kSeed = 23;

    optics::SerpentineLayout layout(kNodes, Meters(0.08));
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar(layout, params);
    core::Designer designer(xbar);

    core::DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = core::Assignment::DistanceBased;
    spec.weights = core::WeightSource::Uniform;
    FlowMatrix flow(kNodes, kNodes, 1.0);
    for (int i = 0; i < kNodes; ++i)
        flow(i, i) = 0.0;
    auto topology = designer.buildTopology(spec, flow);
    auto design =
        designer.buildDesign(spec, topology, flow, DecibelLoss(1.5));

    // Deterministic synthetic traffic: every epoch draws its messages
    // from its own derived PRNG stream, merged and sorted into the
    // canonical (src, dst) cell order the capture path produces.
    sim::Trace trace;
    trace.workloadName = "bench_stream";
    trace.networkName = "mnoc";
    trace.totalTicks = 1000000;
    trace.packets = CountMatrix(kNodes, kNodes, 0);
    trace.flits = CountMatrix(kNodes, kNodes, 0);
    trace.manifest = currentManifest();
    trace.epochs.messagesPerEpoch = kMsgsPerEpoch;
    trace.epochs.epochs.reserve(kEpochs);
    long long total_cells = 0;
    for (std::size_t e = 0; e < kEpochs; ++e) {
        Prng rng(deriveSeed(kSeed, e));
        std::map<std::pair<int, int>,
                 std::pair<std::uint64_t, std::uint64_t>> bucket;
        for (std::uint64_t m = 0; m < kMsgsPerEpoch; ++m) {
            int src = static_cast<int>(rng.below(kNodes));
            int dst = static_cast<int>(rng.below(kNodes - 1));
            if (dst >= src)
                ++dst;
            std::uint64_t flits = 1 + rng.below(8);
            auto &cell = bucket[{src, dst}];
            cell.first += 1;
            cell.second += flits;
        }
        std::vector<noc::EpochCell> cells;
        cells.reserve(bucket.size());
        for (const auto &[key, counts] : bucket) {
            cells.push_back({key.first, key.second, counts.first,
                             counts.second});
            trace.packets(key.first, key.second) += counts.first;
            trace.flits(key.first, key.second) += counts.second;
        }
        total_cells += static_cast<long long>(cells.size());
        trace.epochs.epochs.push_back(std::move(cells));
    }

    std::string file = scratch + "/stream.trace";
    std::string dir = scratch + "/stream.mshards";
    sim::saveTrace(file, trace);
    sim::saveShardedTrace(dir, trace, kEpochsPerShard);

    auto t0 = Clock::now();
    auto whole = sim::loadTrace(file);
    auto serial_ledger =
        designer.model().buildLedger(design, whole);
    auto t1 = Clock::now();

    auto t2 = Clock::now();
    sim::TraceReader reader(dir);
    auto streamed_ledger = designer.model().buildLedger(
        design, reader, nullptr, &parallel);
    auto t3 = Clock::now();

    bench::ParallelRecord record;
    record.name = "streamed_ledger_build";
    record.workItems = total_cells;
    record.serialSeconds = seconds(t0, t1);
    record.parallelSeconds = seconds(t2, t3);
    record.bitIdentical = sameLedger(serial_ledger, streamed_ledger);
    double cells = static_cast<double>(total_cells);
    std::cout << "  streamed ledger: "
              << static_cast<long long>(
                     cells / record.serialSeconds)
              << " msgs/s whole-file, "
              << static_cast<long long>(
                     cells / record.parallelSeconds)
              << " msgs/s streamed\n";
    return record;
}

/**
 * The adaptive-runtime section: run the epoch-boundary controller
 * (runtime/adaptive_controller.hh) over a deterministic two-phase
 * trace on a pool of one and on the configured pool, and require the
 * full run record -- decisions, actions, ledger, reconfiguration
 * charges -- to be bit-identical.  Candidate pricing is the parallel
 * part; the epoch loop itself is sequential by design.  workItems is
 * the epoch count, so epochs/sec falls out of the record directly.
 */
/**
 * Deterministic two-phase synthetic trace shared by the adaptive and
 * journal sections: a neighbor-heavy first half and a uniform second
 * half, each epoch drawn from its own derived stream so the trace is
 * reproducible run over run.
 */
sim::Trace
twoPhaseTrace(int nodes, std::size_t epochs,
              std::uint64_t msgs_per_epoch, std::uint64_t seed)
{
    sim::Trace trace;
    trace.workloadName = "bench_adaptive";
    trace.networkName = "mnoc";
    trace.totalTicks = 1000000;
    trace.packets = CountMatrix(nodes, nodes, 0);
    trace.flits = CountMatrix(nodes, nodes, 0);
    trace.manifest = currentManifest();
    trace.epochs.messagesPerEpoch = msgs_per_epoch;
    trace.epochs.epochs.reserve(epochs);
    for (std::size_t e = 0; e < epochs; ++e) {
        Prng rng(deriveSeed(seed, e));
        bool neighbor_phase = e < epochs / 2;
        std::map<std::pair<int, int>,
                 std::pair<std::uint64_t, std::uint64_t>> bucket;
        for (std::uint64_t m = 0; m < msgs_per_epoch; ++m) {
            int src = static_cast<int>(rng.below(nodes));
            int dst;
            if (neighbor_phase) {
                dst = (src + 1 +
                       static_cast<int>(rng.below(3))) % nodes;
            } else {
                dst = static_cast<int>(rng.below(nodes - 1));
                if (dst >= src)
                    ++dst;
            }
            std::uint64_t flits = 1 + rng.below(8);
            auto &cell = bucket[{src, dst}];
            cell.first += 1;
            cell.second += flits;
        }
        std::vector<noc::EpochCell> cells;
        cells.reserve(bucket.size());
        for (const auto &[key, counts] : bucket) {
            cells.push_back({key.first, key.second, counts.first,
                             counts.second});
            trace.packets(key.first, key.second) += counts.first;
            trace.flits(key.first, key.second) += counts.second;
        }
        trace.epochs.epochs.push_back(std::move(cells));
    }
    return trace;
}

bench::ParallelRecord
benchAdaptiveEpochStep(ThreadPool &serial, ThreadPool &parallel,
                       const std::string &scratch)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kNodes = 64;
    constexpr std::size_t kEpochs = 512;
    constexpr std::uint64_t kMsgsPerEpoch = 128;
    constexpr std::uint64_t kSeed = 31;

    optics::SerpentineLayout layout(kNodes, Meters(0.08));
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar(layout, params);
    core::Designer designer(xbar);

    core::DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = core::Assignment::DistanceBased;
    spec.weights = core::WeightSource::Uniform;
    FlowMatrix flow(kNodes, kNodes, 1.0);
    for (int i = 0; i < kNodes; ++i)
        flow(i, i) = 0.0;
    auto topology = designer.buildTopology(spec, flow);
    auto design =
        designer.buildDesign(spec, topology, flow, DecibelLoss(1.5));

    sim::Trace trace =
        twoPhaseTrace(kNodes, kEpochs, kMsgsPerEpoch, kSeed);

    std::string file = scratch + "/adaptive.trace";
    sim::saveTrace(file, trace);

    runtime::AdaptivePolicy policy;
    policy.candidateSpec.numModes = 2;
    policy.candidateSpec.assignment = core::Assignment::CommAware;
    policy.candidateSpec.weights = core::WeightSource::DesignFlow;
    policy.candidateMargin = DecibelLoss(1.5);

    auto run = [&](ThreadPool &pool, core::EnergyLedger &ledger) {
        sim::TraceReader reader(file);
        return runtime::runAdaptiveController(
            designer, design, policy, reader, nullptr, &ledger,
            &pool);
    };
    core::EnergyLedger serial_ledger(kNodes, 2, kEpochs, 1.0e-3);
    core::EnergyLedger parallel_ledger(kNodes, 2, kEpochs, 1.0e-3);
    auto t0 = Clock::now();
    auto serial_log = run(serial, serial_ledger);
    auto t1 = Clock::now();
    auto parallel_log = run(parallel, parallel_ledger);
    auto t2 = Clock::now();

    bool identical =
        sameLedger(serial_ledger, parallel_ledger) &&
        serial_ledger.totalReconfigEnergy() ==
            parallel_ledger.totalReconfigEnergy() &&
        serial_log.numCandidates == parallel_log.numCandidates &&
        serial_log.finalDesign == parallel_log.finalDesign &&
        serial_log.totalReconfigEnergy ==
            parallel_log.totalReconfigEnergy &&
        serial_log.epochs.size() == parallel_log.epochs.size() &&
        serial_log.actions.size() == parallel_log.actions.size();
    if (identical) {
        for (std::size_t e = 0; e < serial_log.epochs.size(); ++e) {
            const auto &a = serial_log.epochs[e];
            const auto &b = parallel_log.epochs[e];
            identical = identical &&
                        a.activeDesign == b.activeDesign &&
                        a.phaseChange == b.phaseChange &&
                        a.actions == b.actions &&
                        a.staticEnergy == b.staticEnergy &&
                        a.adaptiveEnergy == b.adaptiveEnergy &&
                        a.reconfigEnergy == b.reconfigEnergy;
        }
        for (std::size_t k = 0; k < serial_log.actions.size(); ++k) {
            const auto &a = serial_log.actions[k];
            const auto &b = parallel_log.actions[k];
            identical = identical && a.kind == b.kind &&
                        a.epoch == b.epoch && a.design == b.design &&
                        a.gain == b.gain &&
                        a.energyCost == b.energyCost;
        }
    }

    bench::ParallelRecord record;
    record.name = "adaptive_epoch_step";
    record.workItems = static_cast<long long>(kEpochs);
    record.serialSeconds = seconds(t0, t1);
    record.parallelSeconds = seconds(t1, t2);
    record.bitIdentical = identical;
    std::cout << "  adaptive controller: "
              << serial_log.countActions(
                     runtime::AdaptiveActionKind::PhaseChange)
              << " phase changes, "
              << serial_log.countActions(
                     runtime::AdaptiveActionKind::Retarget)
              << " retargets, "
              << serial_log.countActions(
                     runtime::AdaptiveActionKind::Switch)
              << " switches over " << kEpochs << " epochs\n";
    return record;
}

/**
 * The journal_overhead section: the adaptive-controller run with the
 * decision journal (common/journal.hh) off and on, over the same
 * deterministic two-phase trace.  serialSeconds is the disabled run
 * -- every emission point must cost one relaxed atomic load and
 * nothing else -- and parallelSeconds is the recording run, so
 * speedup ~ 1 pins "MNOC_JOURNAL=0 is free" and the time delta over
 * workItems is the enabled cost per epoch.  bitIdentical requires
 * the disabled run to have recorded nothing and the enabled run's
 * journal bytes to be identical on a pool of one and on the
 * configured pool (the flight recorder's thread-count-invariance
 * contract).
 */
bench::ParallelRecord
benchJournalOverhead(ThreadPool &serial, ThreadPool &parallel,
                     const std::string &scratch)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kNodes = 64;
    constexpr std::size_t kEpochs = 256;
    constexpr std::uint64_t kMsgsPerEpoch = 128;
    constexpr std::uint64_t kSeed = 37;

    optics::SerpentineLayout layout(kNodes, Meters(0.08));
    optics::DeviceParams params;
    optics::OpticalCrossbar xbar(layout, params);
    core::Designer designer(xbar);

    core::DesignSpec spec;
    spec.numModes = 2;
    spec.assignment = core::Assignment::DistanceBased;
    spec.weights = core::WeightSource::Uniform;
    FlowMatrix flow(kNodes, kNodes, 1.0);
    for (int i = 0; i < kNodes; ++i)
        flow(i, i) = 0.0;
    auto topology = designer.buildTopology(spec, flow);
    auto design =
        designer.buildDesign(spec, topology, flow, DecibelLoss(1.5));

    sim::Trace trace =
        twoPhaseTrace(kNodes, kEpochs, kMsgsPerEpoch, kSeed);
    std::string file = scratch + "/journal.trace";
    sim::saveTrace(file, trace);

    runtime::AdaptivePolicy policy;
    policy.candidateSpec.numModes = 2;
    policy.candidateSpec.assignment = core::Assignment::CommAware;
    policy.candidateSpec.weights = core::WeightSource::DesignFlow;
    policy.candidateMargin = DecibelLoss(1.5);

    auto run = [&](ThreadPool &pool) {
        sim::TraceReader reader(file);
        core::EnergyLedger ledger(kNodes, 2, kEpochs, 1.0e-3);
        runtime::runAdaptiveController(designer, design, policy,
                                       reader, nullptr, &ledger,
                                       &pool);
    };

    bool was_enabled = journalEnabled();
    Journal::setEnabled(false);
    Journal::global().reset();
    auto t0 = Clock::now();
    run(parallel);
    auto t1 = Clock::now();
    bool off_silent = Journal::global().size() == 0;

    Journal::setEnabled(true);
    Journal::global().reset();
    auto t2 = Clock::now();
    run(parallel);
    auto t3 = Clock::now();
    std::string parallel_bytes = Journal::global().toBinary();
    std::size_t journal_records = Journal::global().size();

    Journal::global().reset();
    run(serial);
    std::string serial_bytes = Journal::global().toBinary();

    Journal::setEnabled(was_enabled);
    Journal::global().reset();

    bench::ParallelRecord record;
    record.name = "journal_overhead";
    record.workItems = static_cast<long long>(kEpochs);
    record.serialSeconds = seconds(t0, t1);
    record.parallelSeconds = seconds(t2, t3);
    record.bitIdentical =
        off_silent && serial_bytes == parallel_bytes;
    double per_epoch_us =
        (record.parallelSeconds - record.serialSeconds) * 1.0e6 /
        static_cast<double>(kEpochs);
    std::cout << "  journal: " << journal_records << " records over "
              << kEpochs << " epochs, enabled cost "
              << per_epoch_us << " us/epoch, disabled run recorded "
              << (off_silent ? "nothing" : "RECORDS (bug)") << "\n";
    return record;
}

void
printRecord(const bench::ParallelRecord &record)
{
    std::cout << record.name << ": serial "
              << record.serialSeconds << " s, parallel "
              << record.parallelSeconds << " s, speedup "
              << record.speedup() << "x, bit-identical "
              << (record.bitIdentical ? "yes" : "NO") << "\n";
}

} // namespace

int
main()
{
    // Smoke scale unless the caller already chose one.
    setenv("MNOC_BENCH_CORES", "64", 0);
    setenv("MNOC_BENCH_OPS", "500", 0);

    int threads = ThreadPool::configuredThreads();
    std::cout << "=============================================\n"
              << "parallel execution layer: serial vs parallel\n"
              << "pool size " << threads
              << " (override with MNOC_THREADS)\n"
              << "=============================================\n";

    ThreadPool serial(1);
    ThreadPool parallel(threads);

    const char *env_dir = std::getenv("MNOC_BENCH_DIR");
    std::string out_dir = env_dir != nullptr ? env_dir : "bench_out";
    std::filesystem::create_directories(out_dir);
    std::string scratch = out_dir + "/parallel_scratch";

    std::vector<bench::ParallelRecord> records;
    records.push_back(benchYield(serial, parallel));
    printRecord(records.back());
    records.push_back(benchQapMultiStart(serial, parallel));
    printRecord(records.back());
    records.push_back(benchSuite(serial, parallel, scratch));
    printRecord(records.back());
    std::filesystem::create_directories(scratch);
    records.push_back(benchStreamedLedger(parallel, scratch));
    printRecord(records.back());
    records.push_back(benchAdaptiveEpochStep(serial, parallel,
                                             scratch));
    printRecord(records.back());
    records.push_back(benchJournalOverhead(serial, parallel,
                                           scratch));
    printRecord(records.back());
    std::filesystem::remove_all(scratch);

    std::string json_path = out_dir + "/BENCH_parallel.json";
    bench::writeParallelJson(json_path, threads, currentManifest(),
                             records);
    std::cout << "\nwrote " << json_path << "\n";

    bool all_identical = true;
    for (const auto &record : records)
        all_identical = all_identical && record.bitIdentical;
    if (!all_identical) {
        std::cerr << "FAIL: a parallel result diverged from its "
                     "serial twin\n";
        return 1;
    }
    return 0;
}
