/**
 * @file
 * Ablation (Section 4.4): thread-mapping heuristics compared -- naive
 * identity, simulated annealing, and Taillard robust taboo search --
 * on the suite's real traffic, reporting both QAP cost and the
 * resulting single-mode mNoC power.  The paper finds "Taboo generally
 * performs best".
 */

#include <iostream>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader("Thread-mapping heuristic ablation",
                       "Section 4.4");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    FlowMatrix uniform(n, n, 1.0);
    auto identity = harness.identityMapping();

    core::DesignSpec spec; // 1M
    auto design = designer.buildDesign(
        spec, designer.buildTopology(spec, uniform), uniform);

    TextTable table;
    table.addRow({"benchmark", "identity", "annealing", "taboo",
                  "taboo wins"});
    CsvWriter csv(harness.outPath("ablation_qap_solvers.csv"));
    csv.writeRow({"benchmark", "identity_norm", "annealing_norm",
                  "taboo_norm"});

    std::vector<double> sa_norms;
    std::vector<double> taboo_norms;
    int taboo_wins = 0;
    for (const auto &name : harness.benchmarks()) {
        const auto &trace = harness.trace(name);
        FlowMatrix flow = harness.threadFlow(name);
        double base =
            designer.evaluate(design, trace, identity).total();

        core::MappingParams params;
        params.tabooIterations = 20000;
        params.annealingIterations = 600000;
        auto sa = designer.map(flow, core::MappingMethod::Annealing,
                               params);
        const auto &taboo_map = harness.mapping(name);

        double sa_norm =
            designer.evaluate(design, trace, sa.threadToCore).total() /
            base;
        double taboo_norm =
            designer.evaluate(design, trace, taboo_map).total() / base;
        sa_norms.push_back(sa_norm);
        taboo_norms.push_back(taboo_norm);
        if (taboo_norm <= sa_norm)
            ++taboo_wins;

        table.addRow({name, "1.000", TextTable::num(sa_norm, 3),
                      TextTable::num(taboo_norm, 3),
                      taboo_norm <= sa_norm ? "yes" : "no"});
        csv.cell(name).cell(1.0).cell(sa_norm).cell(taboo_norm);
        csv.endRow();
    }
    table.addRow({"hmean", "1.000",
                  TextTable::num(harmonicMean(sa_norms), 3),
                  TextTable::num(harmonicMean(taboo_norms), 3),
                  std::to_string(taboo_wins) + "/12"});
    table.print(std::cout);

    std::cout << "\nPaper anchor: QAP mapping alone cuts single-mode "
                 "power by ~27% on\naverage; taboo generally beats "
                 "simulated annealing.\n";
    return 0;
}
