/**
 * @file
 * Figure 6: the single-mode (broadcast) source power of every core
 * position on the serpentine, normalized to the maximum.  End sources
 * pay ~5x the middle sources, which is what makes QAP thread mapping
 * profitable (Section 4.4).
 */

#include <iostream>

#include "common/csv.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "mNoC single-mode power profile vs source core position",
        "Figure 6");

    const auto &xbar = harness.crossbar();
    int n = harness.numCores();

    double peak = 0.0;
    for (int s = 0; s < n; ++s)
        peak = std::max(peak, xbar.broadcastPower(s).watts());

    CsvWriter csv(harness.outPath("fig6_power_profile.csv"));
    csv.writeRow({"source_position", "normalized_power"});
    for (int s = 0; s < n; ++s) {
        csv.cell(static_cast<long long>(s))
            .cell(xbar.broadcastPower(s).watts() / peak);
        csv.endRow();
    }

    TextTable table;
    table.addRow({"source position", "normalized power"});
    for (int s = 0; s < n; s += n / 16)
        table.addRow({std::to_string(s),
                      TextTable::num(
                          xbar.broadcastPower(s).watts() / peak, 3)});
    table.addRow({std::to_string(n - 1),
                  TextTable::num(
                      xbar.broadcastPower(n - 1).watts() / peak, 3)});
    table.print(std::cout);

    double mid = xbar.broadcastPower(n / 2).watts();
    double end = xbar.broadcastPower(0).watts();
    std::cout << "\nend/middle power ratio: "
              << TextTable::num(end / mid, 2)
              << "  (paper shows a U-shaped profile with ~5x swing)\n"
              << "full profile written to "
              << harness.outPath("fig6_power_profile.csv") << "\n";
    return 0;
}
