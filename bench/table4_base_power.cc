/**
 * @file
 * Table 4: base mNoC power consumption per benchmark -- the radix-256
 * single-mode crossbar with naive thread mapping that every other
 * design is normalized against.
 */

#include <iostream>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader("Base mNoC power consumption (1M, naive mapping)",
                       "Table 4");

    // Paper Table 4 values for side-by-side comparison.
    const std::map<std::string, double> paper = {
        {"barnes", 7.05},  {"radix", 120.34},  {"ocean_c", 12.31},
        {"ocean_nc", 24.23}, {"raytrace", 3.99}, {"fft", 11.41},
        {"water_s", 5.28}, {"water_ns", 6.08},  {"cholesky", 5.14},
        {"lu_cb", 7.79},   {"lu_ncb", 43.70},   {"volrend", 3.99},
    };

    const auto &designer = harness.designer();
    core::DesignSpec spec; // 1M
    auto topology = designer.buildTopology(
        spec, FlowMatrix(harness.numCores(), harness.numCores(), 1.0));
    auto design = designer.buildDesign(
        spec, topology,
        FlowMatrix(harness.numCores(), harness.numCores(), 1.0));
    auto identity = harness.identityMapping();

    TextTable table;
    table.addRow({"benchmark", "measured (W)", "paper (W)"});
    CsvWriter csv(harness.outPath("table4_base_power.csv"));
    csv.writeRow({"benchmark", "measured_w", "paper_w"});

    std::vector<double> measured;
    std::vector<double> reported;
    for (const auto &name : harness.benchmarks()) {
        auto breakdown = designer.evaluate(design, harness.trace(name),
                                           identity);
        double watts = breakdown.total();
        measured.push_back(watts);
        reported.push_back(paper.at(name));
        table.addRow({name, TextTable::num(watts, 2),
                      TextTable::num(paper.at(name), 2)});
        csv.cell(name).cell(watts).cell(paper.at(name));
        csv.endRow();
    }
    table.addRow({"average", TextTable::num(mean(measured), 2),
                  TextTable::num(mean(reported), 2)});
    table.print(std::cout);

    std::cout << "\nPaper anchor: radix dominates (>100 W), lu_ncb and "
                 "ocean_nc follow;\nraytrace/volrend sit near 4 W; "
                 "suite average 20.94 W.  Absolute watts\ndepend on the "
                 "simulated utilization -- the ordering and ratios are "
                 "the\nreproduced result (see EXPERIMENTS.md).\n";
    return 0;
}
