/**
 * @file
 * Figure 3: source power versus maximum broadcast distance, normalized
 * to the full 256-node broadcast.  Waveguide loss makes the required
 * power grow super-linearly with reach -- the headroom power
 * topologies exploit.
 */

#include <iostream>
#include <vector>

#include "common/csv.hh"
#include "common/table.hh"
#include "harness.hh"
#include "optics/splitter_chain.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Source power vs maximum broadcast distance (normalized)",
        "Figure 3");

    int n = harness.numCores();
    const auto &params = harness.deviceParams();
    optics::SerpentineLayout layout{n, optics::defaultWaveguideLength};
    int source = n / 2;
    optics::SplitterChain chain(layout, params, source);
    double pmin = params.pminAtTap().watts();

    // Power for a centered source to reach its nearest (d - 1)
    // destinations (broadcast distance d/2 on each arm).
    auto power_to_reach = [&](int nodes) {
        std::vector<double> targets(n, 0.0);
        int placed = 0;
        for (int gap = 1; placed < nodes - 1 && gap < n; ++gap) {
            if (source - gap >= 0 && placed < nodes - 1) {
                targets[source - gap] = pmin;
                ++placed;
            }
            if (source + gap < n && placed < nodes - 1) {
                targets[source + gap] = pmin;
                ++placed;
            }
        }
        return chain.design(targets).injectedPower.watts();
    };

    double full = power_to_reach(n);
    TextTable table;
    table.addRow({"broadcast distance (nodes)", "relative power"});
    CsvWriter csv(harness.outPath("fig3_broadcast_distance.csv"));
    csv.writeRow({"distance_nodes", "relative_power"});

    for (int d = 2; d <= n; d *= 2) {
        double rel = power_to_reach(d) / full;
        table.addRow({std::to_string(d), TextTable::num(rel, 4)});
        csv.cell(static_cast<long long>(d)).cell(rel);
        csv.endRow();
    }
    table.print(std::cout);
    std::cout << "\nPaper anchor: power grows super-linearly "
                 "(near-exponentially) with\nbroadcast distance; "
                 "halving the reach saves well over half the power.\n";
    return 0;
}
