/**
 * @file
 * Shared support for the experiment-reproduction binaries: one
 * simulation/mapping context with a disk cache, so that each
 * table/figure binary stays self-contained without re-simulating the
 * whole SPLASH suite.
 *
 * Cache files live under ./bench_out (override with MNOC_BENCH_DIR);
 * delete the directory to force re-simulation.  Simulation scale is
 * controlled with MNOC_BENCH_OPS (operations per thread, default 4000)
 * and MNOC_BENCH_CORES (default 256).
 */

#ifndef MNOC_BENCH_HARNESS_HH
#define MNOC_BENCH_HARNESS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/designer.hh"
#include "noc/clustered_network.hh"
#include "noc/mnoc_network.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

namespace mnoc::bench {

/** Shared context for all experiment binaries. */
class Harness
{
  public:
    Harness();

    int numCores() const { return numCores_; }
    const optics::OpticalCrossbar &crossbar() const { return *xbar_; }
    const core::Designer &designer() const { return *designer_; }
    const core::PowerParams &powerParams() const { return powerParams_; }
    const optics::DeviceParams &deviceParams() const
    {
        return deviceParams_;
    }
    const std::string &outDir() const { return outDir_; }

    /** The 12 benchmark names. */
    const std::vector<std::string> &benchmarks() const;

    /**
     * Identity-mapped trace of @p benchmark on the given network
     * ("mnoc" or "rnoc"), simulated on demand and cached on disk.
     */
    const sim::Trace &trace(const std::string &benchmark,
                            const std::string &network = "mnoc");

    /** Taboo thread mapping for @p benchmark (cached on disk). */
    const std::vector<int> &mapping(const std::string &benchmark);

    /** Identity thread mapping. */
    std::vector<int> identityMapping() const;

    /**
     * Average core-coordinate design flow over @p names: each
     * benchmark's flit matrix is permuted by its own taboo mapping and
     * normalized to unit total before averaging (Section 5.4's
     * sampled-traffic weighting).
     */
    FlowMatrix sampledCoreFlow(const std::vector<std::string> &names);

    /** Flow matrix (thread coordinates) of one benchmark's trace. */
    FlowMatrix threadFlow(const std::string &benchmark);

    /** Full path for an output artifact (CSV, PGM). */
    std::string outPath(const std::string &name) const;

  private:
    std::string cacheKey(const std::string &benchmark,
                         const std::string &network) const;
    sim::Trace simulate(const std::string &benchmark,
                        const std::string &network);

    int numCores_;
    int opsPerThread_;
    std::string outDir_;
    optics::DeviceParams deviceParams_;
    core::PowerParams powerParams_;
    std::unique_ptr<optics::SerpentineLayout> layout_;
    std::unique_ptr<optics::SerpentineLayout> portLayout_;
    std::unique_ptr<optics::OpticalCrossbar> xbar_;
    std::unique_ptr<core::Designer> designer_;
    std::map<std::string, sim::Trace> traces_;
    std::map<std::string, std::vector<int>> mappings_;
};

/** Print a standard header for an experiment binary. */
void printHeader(const std::string &title, const std::string &source);

} // namespace mnoc::bench

#endif // MNOC_BENCH_HARNESS_HH
