/**
 * @file
 * Shared support for the experiment-reproduction binaries: one
 * simulation/mapping context with a disk cache keyed by benchmark,
 * network, core count and ops-per-thread, so that each table/figure
 * binary stays self-contained and the whole suite is simulated once
 * *across binaries* -- later binaries (and later runs of the same
 * binary) load the cached trace/mapping instead of re-simulating.
 *
 * Cache files live under ./bench_out (override with MNOC_BENCH_DIR);
 * delete the directory to force re-simulation.  Simulation scale is
 * controlled with MNOC_BENCH_OPS (operations per thread, default 4000)
 * and MNOC_BENCH_CORES (default 256).
 *
 * The in-memory trace/mapping caches are guarded by a mutex, so
 * trace() and mapping() may be called from concurrent ThreadPool
 * tasks (simulateSuite() does exactly that); the expensive simulate
 * and QAP-mapping work runs outside the lock.  The disk cache itself
 * is not locked across processes -- concurrent *processes* may
 * duplicate work but never corrupt results, because each writer
 * produces an identical file for a given key.
 */

#ifndef MNOC_BENCH_HARNESS_HH
#define MNOC_BENCH_HARNESS_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "core/designer.hh"
#include "noc/clustered_network.hh"
#include "noc/mnoc_network.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

namespace mnoc::bench {

/** Shared context for all experiment binaries. */
class Harness
{
  public:
    Harness();

    int numCores() const { return numCores_; }
    const optics::OpticalCrossbar &crossbar() const { return *xbar_; }
    const core::Designer &designer() const { return *designer_; }
    const core::PowerParams &powerParams() const { return powerParams_; }
    const optics::DeviceParams &deviceParams() const
    {
        return deviceParams_;
    }
    const std::string &outDir() const { return outDir_; }

    /** The 12 benchmark names. */
    const std::vector<std::string> &benchmarks() const;

    /**
     * Identity-mapped trace of @p benchmark on the given network
     * ("mnoc" or "rnoc"), simulated on demand and cached on disk.
     * Safe to call from concurrent pool tasks; the returned reference
     * stays valid for the harness's lifetime.
     */
    const sim::Trace &trace(const std::string &benchmark,
                            const std::string &network = "mnoc");

    /** Taboo thread mapping for @p benchmark (cached on disk).
     *  Thread-safe like trace(). */
    const std::vector<int> &mapping(const std::string &benchmark);

    /**
     * Simulate (or load from cache) every benchmark of the suite on
     * @p network, running the per-benchmark simulations concurrently
     * on @p pool (null: the global pool).  Each simulation is
     * independent and seed-deterministic, so the cached traces are
     * bit-identical to a serial warm-up at any thread count.
     */
    void simulateSuite(const std::string &network = "mnoc",
                       ThreadPool *pool = nullptr);

    /** Identity thread mapping. */
    std::vector<int> identityMapping() const;

    /**
     * Average core-coordinate design flow over @p names: each
     * benchmark's flit matrix is permuted by its own taboo mapping and
     * normalized to unit total before averaging (Section 5.4's
     * sampled-traffic weighting).
     */
    FlowMatrix sampledCoreFlow(const std::vector<std::string> &names);

    /** Flow matrix (thread coordinates) of one benchmark's trace. */
    FlowMatrix threadFlow(const std::string &benchmark);

    /** Full path for an output artifact (CSV, PGM, JSON). */
    std::string outPath(const std::string &name) const;

  private:
    std::string cacheKey(const std::string &benchmark,
                         const std::string &network) const;
    sim::Trace simulate(const std::string &benchmark,
                        const std::string &network);

    int numCores_;
    int opsPerThread_;
    std::string outDir_;
    optics::DeviceParams deviceParams_;
    core::PowerParams powerParams_;
    std::unique_ptr<optics::SerpentineLayout> layout_;
    std::unique_ptr<optics::SerpentineLayout> portLayout_;
    std::unique_ptr<optics::OpticalCrossbar> xbar_;
    std::unique_ptr<core::Designer> designer_;
    /** Guards traces_ and mappings_ (pool-aware: simulate/map work
     *  happens outside the lock, lookups and inserts inside). */
    std::mutex cacheMutex_;
    std::map<std::string, sim::Trace> traces_;
    std::map<std::string, std::vector<int>> mappings_;
};

/** Print a standard header for an experiment binary. */
void printHeader(const std::string &title, const std::string &source);

} // namespace mnoc::bench

#endif // MNOC_BENCH_HARNESS_HH
