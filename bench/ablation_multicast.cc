/**
 * @file
 * Extension (paper Section 7, future work): using the SWMR crossbar's
 * native broadcast/multicast for coherence invalidations.  A home node
 * sends one invalidation that every sharer's receiver filters, instead
 * of one unicast per sharer.  Compares packets, runtime, and network
 * power with and without multicast on the sharing-heavy benchmarks.
 */

#include <iostream>
#include <vector>

#include "common/csv.hh"
#include "common/table.hh"
#include "harness.hh"
#include "noc/mnoc_network.hh"
#include "sim/simulator.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Multicast invalidations over the SWMR crossbar",
        "Section 7 (future-work extension)");

    int n = harness.numCores();
    optics::SerpentineLayout layout{n, optics::defaultWaveguideLength};
    noc::NetworkConfig net_config;
    const auto &designer = harness.designer();

    FlowMatrix uniform(n, n, 1.0);
    core::DesignSpec spec; // evaluate under the 1M design
    auto design = designer.buildDesign(
        spec, designer.buildTopology(spec, uniform), uniform);
    auto identity = harness.identityMapping();

    TextTable table;
    table.addRow({"benchmark", "mode", "packets", "mcast invs",
                  "runtime (kcycles)", "power (W)"});
    CsvWriter csv(harness.outPath("ablation_multicast.csv"));
    csv.writeRow({"benchmark", "multicast", "packets", "mcast_invs",
                  "ticks", "power_w"});

    // The write-sharing benchmarks benefit; radix included as the
    // invalidation-heavy extreme.
    for (const std::string name :
         {"water_s", "ocean_nc", "lu_ncb", "radix"}) {
        for (bool multicast : {false, true}) {
            noc::MnocNetwork net(layout, net_config);
            sim::SimConfig config;
            config.numCores = n;
            config.memory.multicastInvalidations = multicast;
            workloads::WorkloadScale scale;
            scale.opsPerThread = 2000;
            auto workload = workloads::makeWorkload(name, scale);
            std::cerr << "[multicast] " << name
                      << (multicast ? " (multicast)" : " (unicast)")
                      << "...\n";
            auto result =
                sim::runSimulation(config, net, *workload, 1);
            auto trace = sim::toTrace(result);
            double power =
                designer.evaluate(design, trace, identity).total();

            table.addRow(
                {name, multicast ? "multicast" : "unicast",
                 std::to_string(result.coherence.packetsSent),
                 std::to_string(result.coherence.multicastInvs),
                 TextTable::num(
                     static_cast<double>(result.totalTicks) / 1000.0,
                     0),
                 TextTable::num(power, 2)});
            csv.cell(name)
                .cell(static_cast<long long>(multicast))
                .cell(static_cast<long long>(
                    result.coherence.packetsSent))
                .cell(static_cast<long long>(
                    result.coherence.multicastInvs))
                .cell(static_cast<long long>(result.totalTicks))
                .cell(power);
            csv.endRow();
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: multicast removes the per-sharer "
                 "invalidation unicasts (fewer\npackets, shorter write "
                 "bursts) at the cost of driving the mode that\ncovers "
                 "the farthest sharer -- the coherence-protocol "
                 "co-design the paper\nleaves as future work.\n";
    return 0;
}
