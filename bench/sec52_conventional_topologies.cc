/**
 * @file
 * Section 5.2's conventional-topology comparison: the paper finds that
 * a 256-node clustered 2-mode power topology (Figure 5a style) saves
 * only ~1 % of mNoC power, "demonstrating that distance-based power
 * topologies are superior to clustered power topologies".  This bench
 * also maps the other conventional structures Section 4.1 names --
 * binary n-cubes and trees -- onto power topologies.
 */

#include <iostream>
#include <map>
#include <vector>

#include "common/csv.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

using namespace mnoc;

int
main()
{
    bench::Harness harness;
    bench::printHeader(
        "Conventional topologies mapped onto power topologies",
        "Sections 4.1/5.2");

    const auto &designer = harness.designer();
    int n = harness.numCores();
    FlowMatrix uniform(n, n, 1.0);
    auto identity = harness.identityMapping();

    // Designs under naive mapping and uniform weights (Section 5.2's
    // comparison setting).
    struct Candidate
    {
        std::string label;
        core::GlobalPowerTopology topology;
    };
    std::vector<Candidate> candidates;
    candidates.push_back(
        {"clustered 2M (Fig 5a)", core::clusteredTopology(n, 4)});
    candidates.push_back(
        {"binary tree 4M", core::binaryTreeTopology(n, 4)});
    candidates.push_back(
        {"hypercube 8M", core::hypercubeTopology(n)});
    candidates.push_back(
        {"distance 2M", core::distanceBasedTopology(n, 2)});
    candidates.push_back(
        {"distance 4M", core::distanceBasedTopology(n, 4)});

    core::DesignSpec base_spec; // 1M
    auto base_design = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, uniform), uniform);

    std::map<std::string, core::MnocDesign> designs;
    for (const auto &candidate : candidates)
        designs.emplace(candidate.label,
                        designer.model().designUniform(
                            candidate.topology));

    TextTable table;
    table.addRow({"topology", "modes", "normalized power (hmean)",
                  "saving"});
    CsvWriter csv(harness.outPath("sec52_conventional.csv"));
    csv.writeRow({"topology", "modes", "normalized_power"});

    for (const auto &candidate : candidates) {
        std::vector<double> norm;
        for (const auto &name : harness.benchmarks()) {
            const auto &trace = harness.trace(name);
            double base =
                designer.evaluate(base_design, trace, identity)
                    .total();
            norm.push_back(
                designer
                    .evaluate(designs.at(candidate.label), trace,
                              identity)
                    .total() /
                base);
        }
        double h = harmonicMean(norm);
        table.addRow({candidate.label,
                      std::to_string(candidate.topology.numModes),
                      TextTable::num(h, 3),
                      TextTable::num(100.0 * (1.0 - h), 1) + "%"});
        csv.cell(candidate.label)
            .cell(static_cast<long long>(candidate.topology.numModes))
            .cell(h);
        csv.endRow();
    }
    table.print(std::cout);

    std::cout << "\nPaper anchor: the clustered 2-mode mapping saves "
                 "only ~1% because nodes\nthat are physically adjacent "
                 "on the waveguide but in different clusters\npay the "
                 "high mode; topologies that respect waveguide distance "
                 "(and the\nhypercube, whose low modes are "
                 "mostly-near neighbours) do far better.\n";
    return 0;
}
