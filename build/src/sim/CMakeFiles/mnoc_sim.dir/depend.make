# Empty dependencies file for mnoc_sim.
# This may be replaced when dependencies are built.
