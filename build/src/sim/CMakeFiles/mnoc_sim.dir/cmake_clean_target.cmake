file(REMOVE_RECURSE
  "libmnoc_sim.a"
)
