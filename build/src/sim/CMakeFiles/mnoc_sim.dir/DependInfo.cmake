
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/mnoc_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/mnoc_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/coherence.cc" "src/sim/CMakeFiles/mnoc_sim.dir/coherence.cc.o" "gcc" "src/sim/CMakeFiles/mnoc_sim.dir/coherence.cc.o.d"
  "/root/repo/src/sim/directory.cc" "src/sim/CMakeFiles/mnoc_sim.dir/directory.cc.o" "gcc" "src/sim/CMakeFiles/mnoc_sim.dir/directory.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/mnoc_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/mnoc_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/mnoc_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/mnoc_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/mnoc_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
