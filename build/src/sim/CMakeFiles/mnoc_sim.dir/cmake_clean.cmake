file(REMOVE_RECURSE
  "CMakeFiles/mnoc_sim.dir/cache.cc.o"
  "CMakeFiles/mnoc_sim.dir/cache.cc.o.d"
  "CMakeFiles/mnoc_sim.dir/coherence.cc.o"
  "CMakeFiles/mnoc_sim.dir/coherence.cc.o.d"
  "CMakeFiles/mnoc_sim.dir/directory.cc.o"
  "CMakeFiles/mnoc_sim.dir/directory.cc.o.d"
  "CMakeFiles/mnoc_sim.dir/simulator.cc.o"
  "CMakeFiles/mnoc_sim.dir/simulator.cc.o.d"
  "CMakeFiles/mnoc_sim.dir/trace.cc.o"
  "CMakeFiles/mnoc_sim.dir/trace.cc.o.d"
  "libmnoc_sim.a"
  "libmnoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
