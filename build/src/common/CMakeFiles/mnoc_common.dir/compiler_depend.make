# Empty compiler generated dependencies file for mnoc_common.
# This may be replaced when dependencies are built.
