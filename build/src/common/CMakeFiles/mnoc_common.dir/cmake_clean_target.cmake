file(REMOVE_RECURSE
  "libmnoc_common.a"
)
