file(REMOVE_RECURSE
  "CMakeFiles/mnoc_common.dir/csv.cc.o"
  "CMakeFiles/mnoc_common.dir/csv.cc.o.d"
  "CMakeFiles/mnoc_common.dir/pgm.cc.o"
  "CMakeFiles/mnoc_common.dir/pgm.cc.o.d"
  "CMakeFiles/mnoc_common.dir/table.cc.o"
  "CMakeFiles/mnoc_common.dir/table.cc.o.d"
  "libmnoc_common.a"
  "libmnoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
