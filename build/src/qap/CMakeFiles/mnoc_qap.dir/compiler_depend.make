# Empty compiler generated dependencies file for mnoc_qap.
# This may be replaced when dependencies are built.
