file(REMOVE_RECURSE
  "libmnoc_qap.a"
)
