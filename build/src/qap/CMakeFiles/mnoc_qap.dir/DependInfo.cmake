
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qap/annealing.cc" "src/qap/CMakeFiles/mnoc_qap.dir/annealing.cc.o" "gcc" "src/qap/CMakeFiles/mnoc_qap.dir/annealing.cc.o.d"
  "/root/repo/src/qap/exhaustive.cc" "src/qap/CMakeFiles/mnoc_qap.dir/exhaustive.cc.o" "gcc" "src/qap/CMakeFiles/mnoc_qap.dir/exhaustive.cc.o.d"
  "/root/repo/src/qap/qap.cc" "src/qap/CMakeFiles/mnoc_qap.dir/qap.cc.o" "gcc" "src/qap/CMakeFiles/mnoc_qap.dir/qap.cc.o.d"
  "/root/repo/src/qap/taboo.cc" "src/qap/CMakeFiles/mnoc_qap.dir/taboo.cc.o" "gcc" "src/qap/CMakeFiles/mnoc_qap.dir/taboo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
