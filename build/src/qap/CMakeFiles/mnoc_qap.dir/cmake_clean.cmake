file(REMOVE_RECURSE
  "CMakeFiles/mnoc_qap.dir/annealing.cc.o"
  "CMakeFiles/mnoc_qap.dir/annealing.cc.o.d"
  "CMakeFiles/mnoc_qap.dir/exhaustive.cc.o"
  "CMakeFiles/mnoc_qap.dir/exhaustive.cc.o.d"
  "CMakeFiles/mnoc_qap.dir/qap.cc.o"
  "CMakeFiles/mnoc_qap.dir/qap.cc.o.d"
  "CMakeFiles/mnoc_qap.dir/taboo.cc.o"
  "CMakeFiles/mnoc_qap.dir/taboo.cc.o.d"
  "libmnoc_qap.a"
  "libmnoc_qap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_qap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
