# Empty compiler generated dependencies file for mnoc_core.
# This may be replaced when dependencies are built.
