file(REMOVE_RECURSE
  "libmnoc_core.a"
)
