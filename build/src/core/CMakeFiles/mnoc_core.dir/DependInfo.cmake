
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_models.cc" "src/core/CMakeFiles/mnoc_core.dir/baseline_models.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/baseline_models.cc.o.d"
  "/root/repo/src/core/builders.cc" "src/core/CMakeFiles/mnoc_core.dir/builders.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/builders.cc.o.d"
  "/root/repo/src/core/comm_aware.cc" "src/core/CMakeFiles/mnoc_core.dir/comm_aware.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/comm_aware.cc.o.d"
  "/root/repo/src/core/design_io.cc" "src/core/CMakeFiles/mnoc_core.dir/design_io.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/design_io.cc.o.d"
  "/root/repo/src/core/designer.cc" "src/core/CMakeFiles/mnoc_core.dir/designer.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/designer.cc.o.d"
  "/root/repo/src/core/power_model.cc" "src/core/CMakeFiles/mnoc_core.dir/power_model.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/power_model.cc.o.d"
  "/root/repo/src/core/power_topology.cc" "src/core/CMakeFiles/mnoc_core.dir/power_topology.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/power_topology.cc.o.d"
  "/root/repo/src/core/thread_mapper.cc" "src/core/CMakeFiles/mnoc_core.dir/thread_mapper.cc.o" "gcc" "src/core/CMakeFiles/mnoc_core.dir/thread_mapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/mnoc_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/qap/CMakeFiles/mnoc_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mnoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
