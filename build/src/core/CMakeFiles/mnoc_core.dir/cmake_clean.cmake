file(REMOVE_RECURSE
  "CMakeFiles/mnoc_core.dir/baseline_models.cc.o"
  "CMakeFiles/mnoc_core.dir/baseline_models.cc.o.d"
  "CMakeFiles/mnoc_core.dir/builders.cc.o"
  "CMakeFiles/mnoc_core.dir/builders.cc.o.d"
  "CMakeFiles/mnoc_core.dir/comm_aware.cc.o"
  "CMakeFiles/mnoc_core.dir/comm_aware.cc.o.d"
  "CMakeFiles/mnoc_core.dir/design_io.cc.o"
  "CMakeFiles/mnoc_core.dir/design_io.cc.o.d"
  "CMakeFiles/mnoc_core.dir/designer.cc.o"
  "CMakeFiles/mnoc_core.dir/designer.cc.o.d"
  "CMakeFiles/mnoc_core.dir/power_model.cc.o"
  "CMakeFiles/mnoc_core.dir/power_model.cc.o.d"
  "CMakeFiles/mnoc_core.dir/power_topology.cc.o"
  "CMakeFiles/mnoc_core.dir/power_topology.cc.o.d"
  "CMakeFiles/mnoc_core.dir/thread_mapper.cc.o"
  "CMakeFiles/mnoc_core.dir/thread_mapper.cc.o.d"
  "libmnoc_core.a"
  "libmnoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
