file(REMOVE_RECURSE
  "libmnoc_workloads.a"
)
