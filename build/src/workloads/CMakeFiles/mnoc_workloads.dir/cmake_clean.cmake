file(REMOVE_RECURSE
  "CMakeFiles/mnoc_workloads.dir/generated.cc.o"
  "CMakeFiles/mnoc_workloads.dir/generated.cc.o.d"
  "CMakeFiles/mnoc_workloads.dir/registry.cc.o"
  "CMakeFiles/mnoc_workloads.dir/registry.cc.o.d"
  "CMakeFiles/mnoc_workloads.dir/splash_grid.cc.o"
  "CMakeFiles/mnoc_workloads.dir/splash_grid.cc.o.d"
  "CMakeFiles/mnoc_workloads.dir/splash_heavy.cc.o"
  "CMakeFiles/mnoc_workloads.dir/splash_heavy.cc.o.d"
  "CMakeFiles/mnoc_workloads.dir/splash_irregular.cc.o"
  "CMakeFiles/mnoc_workloads.dir/splash_irregular.cc.o.d"
  "CMakeFiles/mnoc_workloads.dir/splash_light.cc.o"
  "CMakeFiles/mnoc_workloads.dir/splash_light.cc.o.d"
  "CMakeFiles/mnoc_workloads.dir/synthetic.cc.o"
  "CMakeFiles/mnoc_workloads.dir/synthetic.cc.o.d"
  "libmnoc_workloads.a"
  "libmnoc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
