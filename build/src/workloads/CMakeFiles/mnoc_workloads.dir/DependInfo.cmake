
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/generated.cc" "src/workloads/CMakeFiles/mnoc_workloads.dir/generated.cc.o" "gcc" "src/workloads/CMakeFiles/mnoc_workloads.dir/generated.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/mnoc_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/mnoc_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/splash_grid.cc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_grid.cc.o" "gcc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_grid.cc.o.d"
  "/root/repo/src/workloads/splash_heavy.cc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_heavy.cc.o" "gcc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_heavy.cc.o.d"
  "/root/repo/src/workloads/splash_irregular.cc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_irregular.cc.o" "gcc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_irregular.cc.o.d"
  "/root/repo/src/workloads/splash_light.cc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_light.cc.o" "gcc" "src/workloads/CMakeFiles/mnoc_workloads.dir/splash_light.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/mnoc_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/mnoc_workloads.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/mnoc_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
