# Empty compiler generated dependencies file for mnoc_workloads.
# This may be replaced when dependencies are built.
