file(REMOVE_RECURSE
  "libmnoc_optics.a"
)
