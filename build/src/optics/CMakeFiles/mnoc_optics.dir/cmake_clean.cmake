file(REMOVE_RECURSE
  "CMakeFiles/mnoc_optics.dir/alpha_optimizer.cc.o"
  "CMakeFiles/mnoc_optics.dir/alpha_optimizer.cc.o.d"
  "CMakeFiles/mnoc_optics.dir/crossbar.cc.o"
  "CMakeFiles/mnoc_optics.dir/crossbar.cc.o.d"
  "CMakeFiles/mnoc_optics.dir/link_budget.cc.o"
  "CMakeFiles/mnoc_optics.dir/link_budget.cc.o.d"
  "CMakeFiles/mnoc_optics.dir/serpentine_layout.cc.o"
  "CMakeFiles/mnoc_optics.dir/serpentine_layout.cc.o.d"
  "CMakeFiles/mnoc_optics.dir/splitter_chain.cc.o"
  "CMakeFiles/mnoc_optics.dir/splitter_chain.cc.o.d"
  "libmnoc_optics.a"
  "libmnoc_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
