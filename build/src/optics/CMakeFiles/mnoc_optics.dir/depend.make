# Empty dependencies file for mnoc_optics.
# This may be replaced when dependencies are built.
