
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optics/alpha_optimizer.cc" "src/optics/CMakeFiles/mnoc_optics.dir/alpha_optimizer.cc.o" "gcc" "src/optics/CMakeFiles/mnoc_optics.dir/alpha_optimizer.cc.o.d"
  "/root/repo/src/optics/crossbar.cc" "src/optics/CMakeFiles/mnoc_optics.dir/crossbar.cc.o" "gcc" "src/optics/CMakeFiles/mnoc_optics.dir/crossbar.cc.o.d"
  "/root/repo/src/optics/link_budget.cc" "src/optics/CMakeFiles/mnoc_optics.dir/link_budget.cc.o" "gcc" "src/optics/CMakeFiles/mnoc_optics.dir/link_budget.cc.o.d"
  "/root/repo/src/optics/serpentine_layout.cc" "src/optics/CMakeFiles/mnoc_optics.dir/serpentine_layout.cc.o" "gcc" "src/optics/CMakeFiles/mnoc_optics.dir/serpentine_layout.cc.o.d"
  "/root/repo/src/optics/splitter_chain.cc" "src/optics/CMakeFiles/mnoc_optics.dir/splitter_chain.cc.o" "gcc" "src/optics/CMakeFiles/mnoc_optics.dir/splitter_chain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
