file(REMOVE_RECURSE
  "CMakeFiles/mnoc_noc.dir/clustered_network.cc.o"
  "CMakeFiles/mnoc_noc.dir/clustered_network.cc.o.d"
  "CMakeFiles/mnoc_noc.dir/mnoc_network.cc.o"
  "CMakeFiles/mnoc_noc.dir/mnoc_network.cc.o.d"
  "libmnoc_noc.a"
  "libmnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
