
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/clustered_network.cc" "src/noc/CMakeFiles/mnoc_noc.dir/clustered_network.cc.o" "gcc" "src/noc/CMakeFiles/mnoc_noc.dir/clustered_network.cc.o.d"
  "/root/repo/src/noc/mnoc_network.cc" "src/noc/CMakeFiles/mnoc_noc.dir/mnoc_network.cc.o" "gcc" "src/noc/CMakeFiles/mnoc_noc.dir/mnoc_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/mnoc_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
