file(REMOVE_RECURSE
  "libmnoc_noc.a"
)
