# Empty dependencies file for mnoc_noc.
# This may be replaced when dependencies are built.
