# Empty compiler generated dependencies file for custom_power_topology.
# This may be replaced when dependencies are built.
