file(REMOVE_RECURSE
  "CMakeFiles/custom_power_topology.dir/custom_power_topology.cpp.o"
  "CMakeFiles/custom_power_topology.dir/custom_power_topology.cpp.o.d"
  "custom_power_topology"
  "custom_power_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_power_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
