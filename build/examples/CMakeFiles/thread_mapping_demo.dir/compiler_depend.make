# Empty compiler generated dependencies file for thread_mapping_demo.
# This may be replaced when dependencies are built.
