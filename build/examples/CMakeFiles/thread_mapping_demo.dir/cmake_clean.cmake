file(REMOVE_RECURSE
  "CMakeFiles/thread_mapping_demo.dir/thread_mapping_demo.cpp.o"
  "CMakeFiles/thread_mapping_demo.dir/thread_mapping_demo.cpp.o.d"
  "thread_mapping_demo"
  "thread_mapping_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_mapping_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
