# Empty dependencies file for splash_simulation.
# This may be replaced when dependencies are built.
