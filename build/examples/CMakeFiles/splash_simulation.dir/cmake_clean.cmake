file(REMOVE_RECURSE
  "CMakeFiles/splash_simulation.dir/splash_simulation.cpp.o"
  "CMakeFiles/splash_simulation.dir/splash_simulation.cpp.o.d"
  "splash_simulation"
  "splash_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
