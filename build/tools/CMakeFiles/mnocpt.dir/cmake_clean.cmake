file(REMOVE_RECURSE
  "CMakeFiles/mnocpt.dir/mnocpt.cc.o"
  "CMakeFiles/mnocpt.dir/mnocpt.cc.o.d"
  "mnocpt"
  "mnocpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnocpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
