# Empty dependencies file for mnocpt.
# This may be replaced when dependencies are built.
