file(REMOVE_RECURSE
  "CMakeFiles/test_splitter_chain.dir/test_splitter_chain.cc.o"
  "CMakeFiles/test_splitter_chain.dir/test_splitter_chain.cc.o.d"
  "test_splitter_chain"
  "test_splitter_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitter_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
