# Empty dependencies file for test_splitter_chain.
# This may be replaced when dependencies are built.
