# Empty dependencies file for test_thread_mapper.
# This may be replaced when dependencies are built.
