file(REMOVE_RECURSE
  "CMakeFiles/test_thread_mapper.dir/test_thread_mapper.cc.o"
  "CMakeFiles/test_thread_mapper.dir/test_thread_mapper.cc.o.d"
  "test_thread_mapper"
  "test_thread_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
