file(REMOVE_RECURSE
  "CMakeFiles/test_clustered_network.dir/test_clustered_network.cc.o"
  "CMakeFiles/test_clustered_network.dir/test_clustered_network.cc.o.d"
  "test_clustered_network"
  "test_clustered_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clustered_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
