# Empty dependencies file for test_power_topology.
# This may be replaced when dependencies are built.
