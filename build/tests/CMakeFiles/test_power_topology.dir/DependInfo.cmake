
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_power_topology.cc" "tests/CMakeFiles/test_power_topology.dir/test_power_topology.cc.o" "gcc" "tests/CMakeFiles/test_power_topology.dir/test_power_topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mnoc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/qap/CMakeFiles/mnoc_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/mnoc_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mnoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
