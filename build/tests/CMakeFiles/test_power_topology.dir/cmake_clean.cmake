file(REMOVE_RECURSE
  "CMakeFiles/test_power_topology.dir/test_power_topology.cc.o"
  "CMakeFiles/test_power_topology.dir/test_power_topology.cc.o.d"
  "test_power_topology"
  "test_power_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
