file(REMOVE_RECURSE
  "CMakeFiles/test_memop.dir/test_memop.cc.o"
  "CMakeFiles/test_memop.dir/test_memop.cc.o.d"
  "test_memop"
  "test_memop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
