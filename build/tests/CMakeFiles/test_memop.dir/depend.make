# Empty dependencies file for test_memop.
# This may be replaced when dependencies are built.
