file(REMOVE_RECURSE
  "CMakeFiles/test_design_io.dir/test_design_io.cc.o"
  "CMakeFiles/test_design_io.dir/test_design_io.cc.o.d"
  "test_design_io"
  "test_design_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
