# Empty dependencies file for test_serpentine.
# This may be replaced when dependencies are built.
