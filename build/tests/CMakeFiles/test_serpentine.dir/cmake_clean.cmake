file(REMOVE_RECURSE
  "CMakeFiles/test_serpentine.dir/test_serpentine.cc.o"
  "CMakeFiles/test_serpentine.dir/test_serpentine.cc.o.d"
  "test_serpentine"
  "test_serpentine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serpentine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
