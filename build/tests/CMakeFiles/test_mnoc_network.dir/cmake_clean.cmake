file(REMOVE_RECURSE
  "CMakeFiles/test_mnoc_network.dir/test_mnoc_network.cc.o"
  "CMakeFiles/test_mnoc_network.dir/test_mnoc_network.cc.o.d"
  "test_mnoc_network"
  "test_mnoc_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mnoc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
