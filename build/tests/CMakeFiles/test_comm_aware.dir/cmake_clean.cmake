file(REMOVE_RECURSE
  "CMakeFiles/test_comm_aware.dir/test_comm_aware.cc.o"
  "CMakeFiles/test_comm_aware.dir/test_comm_aware.cc.o.d"
  "test_comm_aware"
  "test_comm_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
