file(REMOVE_RECURSE
  "CMakeFiles/test_qap.dir/test_qap.cc.o"
  "CMakeFiles/test_qap.dir/test_qap.cc.o.d"
  "test_qap"
  "test_qap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
