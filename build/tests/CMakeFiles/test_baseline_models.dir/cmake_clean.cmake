file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_models.dir/test_baseline_models.cc.o"
  "CMakeFiles/test_baseline_models.dir/test_baseline_models.cc.o.d"
  "test_baseline_models"
  "test_baseline_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
