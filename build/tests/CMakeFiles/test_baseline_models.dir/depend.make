# Empty dependencies file for test_baseline_models.
# This may be replaced when dependencies are built.
