# Empty compiler generated dependencies file for test_alpha_optimizer.
# This may be replaced when dependencies are built.
