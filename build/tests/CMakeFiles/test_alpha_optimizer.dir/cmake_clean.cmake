file(REMOVE_RECURSE
  "CMakeFiles/test_alpha_optimizer.dir/test_alpha_optimizer.cc.o"
  "CMakeFiles/test_alpha_optimizer.dir/test_alpha_optimizer.cc.o.d"
  "test_alpha_optimizer"
  "test_alpha_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alpha_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
