file(REMOVE_RECURSE
  "CMakeFiles/ablation_waveguide_loss.dir/ablation_waveguide_loss.cc.o"
  "CMakeFiles/ablation_waveguide_loss.dir/ablation_waveguide_loss.cc.o.d"
  "ablation_waveguide_loss"
  "ablation_waveguide_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_waveguide_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
