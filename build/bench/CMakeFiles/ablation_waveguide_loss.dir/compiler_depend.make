# Empty compiler generated dependencies file for ablation_waveguide_loss.
# This may be replaced when dependencies are built.
