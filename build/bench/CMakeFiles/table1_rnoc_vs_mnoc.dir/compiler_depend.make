# Empty compiler generated dependencies file for table1_rnoc_vs_mnoc.
# This may be replaced when dependencies are built.
