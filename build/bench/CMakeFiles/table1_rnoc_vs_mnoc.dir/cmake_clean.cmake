file(REMOVE_RECURSE
  "CMakeFiles/table1_rnoc_vs_mnoc.dir/table1_rnoc_vs_mnoc.cc.o"
  "CMakeFiles/table1_rnoc_vs_mnoc.dir/table1_rnoc_vs_mnoc.cc.o.d"
  "table1_rnoc_vs_mnoc"
  "table1_rnoc_vs_mnoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rnoc_vs_mnoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
