file(REMOVE_RECURSE
  "CMakeFiles/sec56_splitter_sensitivity.dir/sec56_splitter_sensitivity.cc.o"
  "CMakeFiles/sec56_splitter_sensitivity.dir/sec56_splitter_sensitivity.cc.o.d"
  "sec56_splitter_sensitivity"
  "sec56_splitter_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_splitter_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
