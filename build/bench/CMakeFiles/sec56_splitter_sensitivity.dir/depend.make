# Empty dependencies file for sec56_splitter_sensitivity.
# This may be replaced when dependencies are built.
