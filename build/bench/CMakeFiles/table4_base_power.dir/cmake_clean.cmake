file(REMOVE_RECURSE
  "CMakeFiles/table4_base_power.dir/table4_base_power.cc.o"
  "CMakeFiles/table4_base_power.dir/table4_base_power.cc.o.d"
  "table4_base_power"
  "table4_base_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_base_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
