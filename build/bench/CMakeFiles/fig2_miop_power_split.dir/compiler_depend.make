# Empty compiler generated dependencies file for fig2_miop_power_split.
# This may be replaced when dependencies are built.
