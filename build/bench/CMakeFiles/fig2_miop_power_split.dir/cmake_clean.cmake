file(REMOVE_RECURSE
  "CMakeFiles/fig2_miop_power_split.dir/fig2_miop_power_split.cc.o"
  "CMakeFiles/fig2_miop_power_split.dir/fig2_miop_power_split.cc.o.d"
  "fig2_miop_power_split"
  "fig2_miop_power_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_miop_power_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
