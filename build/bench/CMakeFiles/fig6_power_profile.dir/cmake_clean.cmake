file(REMOVE_RECURSE
  "CMakeFiles/fig6_power_profile.dir/fig6_power_profile.cc.o"
  "CMakeFiles/fig6_power_profile.dir/fig6_power_profile.cc.o.d"
  "fig6_power_profile"
  "fig6_power_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_power_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
