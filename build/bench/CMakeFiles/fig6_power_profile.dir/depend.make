# Empty dependencies file for fig6_power_profile.
# This may be replaced when dependencies are built.
