# Empty dependencies file for sec55_app_specific.
# This may be replaced when dependencies are built.
