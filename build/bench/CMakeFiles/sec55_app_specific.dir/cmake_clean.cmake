file(REMOVE_RECURSE
  "CMakeFiles/sec55_app_specific.dir/sec55_app_specific.cc.o"
  "CMakeFiles/sec55_app_specific.dir/sec55_app_specific.cc.o.d"
  "sec55_app_specific"
  "sec55_app_specific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_app_specific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
