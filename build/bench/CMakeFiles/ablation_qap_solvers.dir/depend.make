# Empty dependencies file for ablation_qap_solvers.
# This may be replaced when dependencies are built.
