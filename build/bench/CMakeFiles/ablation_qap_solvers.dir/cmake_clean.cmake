file(REMOVE_RECURSE
  "CMakeFiles/ablation_qap_solvers.dir/ablation_qap_solvers.cc.o"
  "CMakeFiles/ablation_qap_solvers.dir/ablation_qap_solvers.cc.o.d"
  "ablation_qap_solvers"
  "ablation_qap_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qap_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
