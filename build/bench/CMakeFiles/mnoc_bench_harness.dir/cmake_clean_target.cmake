file(REMOVE_RECURSE
  "libmnoc_bench_harness.a"
)
