file(REMOVE_RECURSE
  "CMakeFiles/mnoc_bench_harness.dir/harness.cc.o"
  "CMakeFiles/mnoc_bench_harness.dir/harness.cc.o.d"
  "libmnoc_bench_harness.a"
  "libmnoc_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnoc_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
