# Empty compiler generated dependencies file for mnoc_bench_harness.
# This may be replaced when dependencies are built.
