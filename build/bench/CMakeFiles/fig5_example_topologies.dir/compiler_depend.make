# Empty compiler generated dependencies file for fig5_example_topologies.
# This may be replaced when dependencies are built.
