file(REMOVE_RECURSE
  "CMakeFiles/fig5_example_topologies.dir/fig5_example_topologies.cc.o"
  "CMakeFiles/fig5_example_topologies.dir/fig5_example_topologies.cc.o.d"
  "fig5_example_topologies"
  "fig5_example_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_example_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
