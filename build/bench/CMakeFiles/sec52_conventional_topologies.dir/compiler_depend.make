# Empty compiler generated dependencies file for sec52_conventional_topologies.
# This may be replaced when dependencies are built.
