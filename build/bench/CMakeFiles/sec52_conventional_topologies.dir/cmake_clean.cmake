file(REMOVE_RECURSE
  "CMakeFiles/sec52_conventional_topologies.dir/sec52_conventional_topologies.cc.o"
  "CMakeFiles/sec52_conventional_topologies.dir/sec52_conventional_topologies.cc.o.d"
  "sec52_conventional_topologies"
  "sec52_conventional_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_conventional_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
