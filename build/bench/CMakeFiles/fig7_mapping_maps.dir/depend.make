# Empty dependencies file for fig7_mapping_maps.
# This may be replaced when dependencies are built.
