file(REMOVE_RECURSE
  "CMakeFiles/perf_comparison.dir/perf_comparison.cc.o"
  "CMakeFiles/perf_comparison.dir/perf_comparison.cc.o.d"
  "perf_comparison"
  "perf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
