# Empty dependencies file for ablation_mode_count.
# This may be replaced when dependencies are built.
