file(REMOVE_RECURSE
  "CMakeFiles/ablation_mode_count.dir/ablation_mode_count.cc.o"
  "CMakeFiles/ablation_mode_count.dir/ablation_mode_count.cc.o.d"
  "ablation_mode_count"
  "ablation_mode_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mode_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
