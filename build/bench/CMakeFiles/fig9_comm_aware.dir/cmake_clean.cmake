file(REMOVE_RECURSE
  "CMakeFiles/fig9_comm_aware.dir/fig9_comm_aware.cc.o"
  "CMakeFiles/fig9_comm_aware.dir/fig9_comm_aware.cc.o.d"
  "fig9_comm_aware"
  "fig9_comm_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_comm_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
