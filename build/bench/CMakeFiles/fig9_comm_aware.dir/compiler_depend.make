# Empty compiler generated dependencies file for fig9_comm_aware.
# This may be replaced when dependencies are built.
