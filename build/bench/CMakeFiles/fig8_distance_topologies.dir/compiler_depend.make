# Empty compiler generated dependencies file for fig8_distance_topologies.
# This may be replaced when dependencies are built.
