file(REMOVE_RECURSE
  "CMakeFiles/fig8_distance_topologies.dir/fig8_distance_topologies.cc.o"
  "CMakeFiles/fig8_distance_topologies.dir/fig8_distance_topologies.cc.o.d"
  "fig8_distance_topologies"
  "fig8_distance_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_distance_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
