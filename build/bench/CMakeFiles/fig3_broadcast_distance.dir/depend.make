# Empty dependencies file for fig3_broadcast_distance.
# This may be replaced when dependencies are built.
