file(REMOVE_RECURSE
  "CMakeFiles/fig3_broadcast_distance.dir/fig3_broadcast_distance.cc.o"
  "CMakeFiles/fig3_broadcast_distance.dir/fig3_broadcast_distance.cc.o.d"
  "fig3_broadcast_distance"
  "fig3_broadcast_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_broadcast_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
