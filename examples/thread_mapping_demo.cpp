/**
 * @file
 * Thread mapping on the serpentine power profile (paper Section 4.4):
 * compares naive placement, simulated annealing, and robust taboo
 * search for a workload whose hot threads start at opposite ends of
 * the waveguide, and visualizes where each heuristic puts them.
 */

#include <iostream>
#include <string>

#include "core/thread_mapper.hh"

using namespace mnoc;

namespace {

/** Hot clique of 8 threads scattered across the thread ID space. */
FlowMatrix
cliqueTraffic(int n)
{
    FlowMatrix flow(n, n, 0.5);
    const int clique[] = {0, 9, 18, 27, 36, 45, 54, 63};
    for (int a : clique)
        for (int b : clique)
            if (a != b)
                flow(a, b) = 200.0;
    for (int i = 0; i < n; ++i)
        flow(i, i) = 0.0;
    return flow;
}

void
drawPlacement(const std::string &label, const std::vector<int> &map,
              int n)
{
    // One character per core along the serpentine: '#' where a clique
    // thread landed.
    std::string row(n, '.');
    const int clique[] = {0, 9, 18, 27, 36, 45, 54, 63};
    for (int t : clique)
        row[map[t]] = '#';
    std::cout << "  " << label << ": " << row << "\n";
}

} // namespace

int
main()
{
    const int n = 64;
    optics::SerpentineLayout layout{n, Meters(0.12)};
    optics::OpticalCrossbar crossbar(layout, optics::DeviceParams{});
    FlowMatrix traffic = cliqueTraffic(n);

    std::cout << "Single-mode power profile: ends are ~4-5x more "
                 "expensive than the middle,\nso the mapper should "
                 "drag the hot clique toward the center.\n\n";

    core::MappingParams params;
    params.tabooIterations = 15000;
    params.annealingIterations = 300000;

    auto naive = core::mapThreads(crossbar, traffic,
                                  core::MappingMethod::Identity);
    auto annealed = core::mapThreads(crossbar, traffic,
                                     core::MappingMethod::Annealing,
                                     params);
    auto taboo = core::mapThreads(crossbar, traffic,
                                  core::MappingMethod::Taboo, params);

    std::cout << "QAP cost (flow x power-distance):\n"
              << "  naive     " << naive.qapCost << "\n"
              << "  annealing " << annealed.qapCost << " ("
              << 100.0 * (1.0 - annealed.qapCost / naive.qapCost)
              << "% better)\n"
              << "  taboo     " << taboo.qapCost << " ("
              << 100.0 * (1.0 - taboo.qapCost / naive.qapCost)
              << "% better)\n\n";

    std::cout << "Clique placement along the waveguide "
                 "(left/right = waveguide ends):\n";
    drawPlacement("naive    ", naive.threadToCore, n);
    drawPlacement("annealing", annealed.threadToCore, n);
    drawPlacement("taboo    ", taboo.threadToCore, n);

    std::cout << "\nThe paper's observation holds: \"we explore both "
                 "Taboo and simulated\nannealing, and find that Taboo "
                 "generally performs best\".\n";
    return 0;
}
