/**
 * @file
 * Quickstart: build a radix-64 mNoC crossbar, give it a two-mode power
 * topology, and compare its power against plain broadcast on a simple
 * neighbour-heavy traffic pattern.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/builders.hh"
#include "core/power_model.hh"
#include "optics/crossbar.hh"

using namespace mnoc;

int
main()
{
    // 1. Physical substrate: a 64-node serpentine SWMR crossbar with
    //    the paper's Table 3 device parameters.
    const int n = 64;
    optics::SerpentineLayout layout{n, Meters(0.12)};
    optics::DeviceParams devices; // QD LEDs, chromophores, 1 dB/cm
    optics::OpticalCrossbar crossbar(layout, devices);

    std::cout << "Broadcast drive power: "
              << crossbar.broadcastPower(0) * 1e3 << " mW (end), "
              << crossbar.broadcastPower(n / 2) * 1e3
              << " mW (middle)\n";

    // 2. A power topology: two modes, nearest half of the crossbar in
    //    the cheap mode.
    core::GlobalPowerTopology topology =
        core::distanceBasedTopology(n, 2);

    // 3. Solve the splitter design and build the power model.
    core::MnocPowerModel model(crossbar);
    core::MnocDesign design = model.designUniform(topology);
    std::cout << "Mode powers of source 0: "
              << design.sources[0].modePower[0] * 1e3 << " mW (near), "
              << design.sources[0].modePower[1] * 1e3
              << " mW (broadcast)\n";

    // 4. Some traffic: each node streams mostly to its ring successor.
    sim::Trace trace;
    trace.workloadName = "quickstart";
    trace.totalTicks = 1'000'000;
    trace.packets = CountMatrix(n, n, 0);
    trace.flits = CountMatrix(n, n, 0);
    for (int s = 0; s < n; ++s) {
        trace.flits(s, (s + 1) % n) = 60000;  // hot neighbour
        trace.flits(s, (s + 7) % n) = 3000;   // occasional far partner
        trace.packets(s, (s + 1) % n) = 20000;
        trace.packets(s, (s + 7) % n) = 1000;
    }

    // 5. Evaluate and compare against single-mode broadcast.
    auto broadcast_design =
        model.designUniform(core::GlobalPowerTopology::singleMode(n));
    core::PowerBreakdown base = model.evaluate(broadcast_design, trace);
    core::PowerBreakdown two_mode = model.evaluate(design, trace);

    std::cout << "\nAverage network power on the ring workload:\n"
              << "  single mode (broadcast): " << base.total()
              << " W\n"
              << "  two-mode power topology: " << two_mode.total()
              << " W  ("
              << 100.0 * (1.0 - two_mode.total() / base.total())
              << "% saved)\n";

    std::cout << "\nBreakdown (two-mode): source " << two_mode.source
              << " W, O/E " << two_mode.oe << " W, electrical "
              << two_mode.electrical << " W\n";
    return 0;
}
