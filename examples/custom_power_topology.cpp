/**
 * @file
 * Designing a custom communication-aware power topology for an
 * embedded accelerator with fixed traffic (paper Sections 4.3/5.5):
 * a DNN-like pipeline where stages stream to the next stage, a few
 * hub nodes aggregate, and a control core broadcasts occasionally.
 *
 * Shows the full design flow: describe traffic -> QAP placement ->
 * communication-aware mode assignment -> splitter solve -> report,
 * including the per-source mode tables software would program
 * (Section 3.2.2).
 */

#include <iomanip>
#include <iostream>

#include "core/designer.hh"

using namespace mnoc;

namespace {

/** Fixed traffic of a 32-node pipelined accelerator, in flits/kcycle. */
FlowMatrix
acceleratorTraffic(int n)
{
    FlowMatrix flow(n, n, 0.0);
    // Pipeline: stage i streams activations to stage i+1.
    for (int i = 0; i + 1 < n; ++i)
        flow(i, i + 1) = 500.0;
    // Two aggregation hubs gather statistics from everyone.
    for (int hub : {5, 23}) {
        for (int i = 0; i < n; ++i)
            if (i != hub)
                flow(i, hub) += 40.0;
    }
    // The control core (0) broadcasts configuration rarely.
    for (int i = 1; i < n; ++i)
        flow(0, i) += 2.0;
    return flow;
}

} // namespace

int
main()
{
    const int n = 32;
    optics::SerpentineLayout layout{n, Meters(0.08)};
    optics::DeviceParams devices;
    optics::OpticalCrossbar crossbar(layout, devices);
    core::Designer designer(crossbar);

    FlowMatrix traffic = acceleratorTraffic(n);

    // Step 1: place the threads (QAP, taboo search).
    core::MappingParams map_params;
    map_params.tabooIterations = 8000;
    auto mapping = designer.map(traffic, core::MappingMethod::Taboo,
                                map_params);
    std::cout << "QAP cost: " << mapping.identityCost << " -> "
              << mapping.qapCost << " ("
              << 100.0 * (1.0 - mapping.qapCost / mapping.identityCost)
              << "% better than naive placement)\n";

    // Step 2: communication-aware 4-mode assignment on the placed
    // traffic.
    FlowMatrix placed = permuteFlow(traffic, mapping.threadToCore);
    core::DesignSpec spec;
    spec.numModes = 4;
    spec.mapping = core::MappingMethod::Taboo;
    spec.assignment = core::Assignment::CommAware;
    spec.weights = core::WeightSource::DesignFlow;
    spec.sampleTag = "app";
    auto topology = designer.buildTopology(spec, placed);
    auto design = designer.buildDesign(spec, topology, placed);
    std::cout << "Design " << spec.label() << " built: " << n
              << " sources x " << topology.numModes << " modes\n";

    // Step 3: the software-visible mode table of one source
    // (Section 3.2.2: a table of drive constants per destination).
    int demo = mapping.threadToCore[1]; // core running pipeline stage 1
    std::cout << "\nMode table of core " << demo
              << " (destination: mode, drive mW):\n";
    const auto &local = topology.local(demo);
    const auto &source_design = design.sources[demo];
    for (int d = 0; d < n; ++d) {
        if (d == demo)
            continue;
        int mode = local.modeOfDest[d];
        if (d % 8 == 0 || mode == 0) {
            std::cout << "  -> core " << std::setw(2) << d << ": mode "
                      << mode << ", "
                      << source_design.modePower[mode] * 1e3
                      << " mW\n";
        }
    }

    // Step 4: power versus a plain broadcast crossbar.
    sim::Trace trace;
    trace.totalTicks = 1'000'000;
    trace.packets = CountMatrix(n, n, 0);
    trace.flits = CountMatrix(n, n, 0);
    for (int s = 0; s < n; ++s)
        for (int d = 0; d < n; ++d)
            trace.flits(s, d) =
                static_cast<std::uint64_t>(traffic(s, d) * 100.0);

    core::DesignSpec base_spec; // 1M
    auto base = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, placed), placed);
    std::vector<int> identity(n);
    for (int i = 0; i < n; ++i)
        identity[i] = i;

    double base_power =
        designer.evaluate(base, trace, identity).total();
    double custom_power =
        designer.evaluate(design, trace, mapping.threadToCore).total();
    std::cout << "\nNetwork power: broadcast " << base_power
              << " W -> custom topology " << custom_power << " W ("
              << 100.0 * (1.0 - custom_power / base_power)
              << "% saved)\n";
    return 0;
}
