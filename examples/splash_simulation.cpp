/**
 * @file
 * End-to-end run of one SPLASH kernel through the full stack: coherent
 * multicore simulation on the mNoC crossbar, trace capture, thread
 * mapping, power-topology design, and the final power report --
 * the pipeline behind the paper's Figures 8-10.
 *
 * Usage: splash_simulation [benchmark] [num_cores]
 *   benchmark: one of the 12 SPLASH names (default water_s)
 *   num_cores: system size (default 64 for a quick run)
 */

#include <iostream>
#include <string>

#include "core/designer.hh"
#include "noc/mnoc_network.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

using namespace mnoc;

int
main(int argc, char **argv)
{
    std::string benchmark = argc > 1 ? argv[1] : "water_s";
    int n = argc > 2 ? std::atoi(argv[2]) : 64;

    optics::SerpentineLayout layout{
        n, optics::defaultWaveguideLength * n / 256.0};
    optics::OpticalCrossbar crossbar(layout, optics::DeviceParams{});
    noc::NetworkConfig net_config;
    noc::MnocNetwork network(layout, net_config);
    core::Designer designer(crossbar);

    // 1. Simulate the kernel over the MOSI-coherent memory system.
    std::cout << "simulating " << benchmark << " on " << n
              << " cores...\n";
    sim::SimConfig sim_config;
    sim_config.numCores = n;
    auto workload = workloads::makeWorkload(benchmark);
    auto result = sim::runSimulation(sim_config, network, *workload, 1);
    auto trace = sim::toTrace(result);

    std::cout << "  " << result.coherence.accesses << " memory ops, "
              << result.coherence.packetsSent << " packets, "
              << result.totalTicks << " cycles, avg packet latency "
              << result.avgPacketLatency << "\n"
              << "  L1 hits " << result.coherence.l1Hits << ", L2 hits "
              << result.coherence.l2Hits << ", c2c transfers "
              << result.coherence.cacheToCache << ", invalidations "
              << result.coherence.invalidations << "\n";

    // 2. Thread mapping from the captured traffic.
    FlowMatrix flow = toFlowMatrix(trace.flits);
    core::MappingParams map_params;
    map_params.tabooIterations = 10000;
    auto mapping = designer.map(flow, core::MappingMethod::Taboo,
                                map_params);

    // 3. Designs: baseline, distance-based, communication-aware.
    FlowMatrix placed = permuteFlow(flow, mapping.threadToCore);
    std::vector<int> identity(n);
    for (int i = 0; i < n; ++i)
        identity[i] = i;

    core::DesignSpec base_spec; // 1M
    auto base = designer.buildDesign(
        base_spec, designer.buildTopology(base_spec, flow), flow);

    core::DesignSpec naive_spec;
    naive_spec.numModes = 4;
    auto naive = designer.buildDesign(
        naive_spec, designer.buildTopology(naive_spec, flow), flow);

    core::DesignSpec aware_spec;
    aware_spec.numModes = 4;
    aware_spec.assignment = core::Assignment::CommAware;
    aware_spec.weights = core::WeightSource::DesignFlow;
    auto aware = designer.buildDesign(
        aware_spec, designer.buildTopology(aware_spec, placed),
        placed);

    // 4. Power report.
    double p_base = designer.evaluate(base, trace, identity).total();
    double p_naive = designer.evaluate(naive, trace, identity).total();
    double p_aware =
        designer.evaluate(aware, trace, mapping.threadToCore).total();

    std::cout << "\nnetwork power for " << benchmark << ":\n"
              << "  1M broadcast, naive mapping:   " << p_base
              << " W\n"
              << "  4M distance-based (4M_N_U):    " << p_naive
              << " W  (" << 100.0 * (1.0 - p_naive / p_base) << "%)\n"
              << "  4M comm-aware + taboo (4M_T_G): " << p_aware
              << " W  (" << 100.0 * (1.0 - p_aware / p_base) << "%)\n";
    return 0;
}
