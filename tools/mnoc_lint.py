#!/usr/bin/env python3
"""mnoc-lint: domain-specific static checks for the mNoC tree.

The strong unit types in src/common/units.hh only help if the rest of
the tree goes through them, so this linter enforces the conventions
that the compiler cannot:

  raw-pow         10^(x/10) conversions must live in units.hh only
                  (everything else converts through DecibelLoss /
                  LinearFactor).
  unit-param      public headers must not declare `double` parameters
                  or fields whose names carry a unit suffix (_db, _w,
                  _uw, _mw, _dbm, _m, _cm): use DecibelLoss, WattPower
                  or Meters so the type carries the unit.
  float           power math is double-only; float halves the mantissa
                  on dB sums that are differenced later.
  header-guard    headers use #ifndef MNOC_<PATH>_HH guards matching
                  their path, with a matching trailing comment.
  include-order   own header first (in .cc files), then <system>
                  includes, then "project" includes, each block sorted.
  format          no tabs, no trailing whitespace, lines <= 79 columns
                  (mirrors .clang-format for containers without
                  clang-format).

Usage:
  tools/mnoc_lint.py [--root DIR] [FILE...]

With no FILE arguments, lints the standard source directories under
the root.  Exits 0 when clean, 1 when any finding is reported, 2 on
usage errors.

The former rng / raw-thread / raw-ofstream regex rules moved to
tools/analyze (mnoc-analyze), which matches them token-accurately
from the compilation database instead of line-by-line.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

MAX_LINE = 79

# Directories holding first-party sources, relative to the repo root.
DEFAULT_DIRS = ("src", "tests", "tools", "bench", "examples")

# Files allowed to do raw dB <-> linear conversions.
POW_ALLOWLIST = ("src/common/units.hh",)

# Directories whose sources are power math (float-free zone).
FLOAT_DIRS = ("src/optics", "src/core", "src/faults", "src/common",
              "src/runtime")

RAW_POW_RE = re.compile(r"\bpow\s*\(\s*10(?:\.0*)?\s*,")
FLOAT_RE = re.compile(r"\bfloat\b")
UNIT_PARAM_RE = re.compile(
    r"\bdouble\s+(\w*_(?:db|dbm|w|uw|mw|m|cm))\b")
INCLUDE_RE = re.compile(r'#\s*include\s*([<"])([^>"]+)[>"]')


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, line, rule, message):
        self.items.append((str(path), line, rule, message))

    def report(self, out=sys.stdout):
        for path, line, rule, message in sorted(self.items):
            out.write(f"{path}:{line}: [{rule}] {message}\n")
        return 1 if self.items else 0


def strip_comments(lines):
    """Yield (lineno, text) with string literals and comments blanked,
    so rules do not fire on documentation or quoted text."""
    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        out = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = raw[i]
            if ch == "/" and i + 1 < n and raw[i + 1] == "/":
                break
            if ch == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                out.append(ch)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        break
                    i += 1
                if i < n:
                    out.append(quote)
                    i += 1
                continue
            out.append(ch)
            i += 1
        yield lineno, "".join(out)


def rel(path, root):
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def expected_guard(relpath):
    """src/optics/link_budget.hh -> MNOC_OPTICS_LINK_BUDGET_HH."""
    parts = Path(relpath).parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.hh$", "", stem)
    return "MNOC_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_HH"


def check_raw_pow(relpath, code_lines, findings):
    if relpath in POW_ALLOWLIST:
        return
    for lineno, text in code_lines:
        if RAW_POW_RE.search(text):
            findings.add(relpath, lineno, "raw-pow",
                         "raw pow(10, ...) conversion; use "
                         "DecibelLoss::toTransmission()/toAttenuation()"
                         " from common/units.hh")


def check_float(relpath, code_lines, findings):
    if not relpath.endswith((".cc", ".hh")):
        return
    if not any(relpath.startswith(d + "/") for d in FLOAT_DIRS):
        return
    for lineno, text in code_lines:
        if FLOAT_RE.search(text):
            findings.add(relpath, lineno, "float",
                         "power math is double-only; float loses "
                         "precision on accumulated dB/watt terms")


def check_unit_params(relpath, code_lines, findings):
    if not (relpath.startswith("src/") and relpath.endswith(".hh")):
        return
    for lineno, text in code_lines:
        match = UNIT_PARAM_RE.search(text)
        if match:
            findings.add(relpath, lineno, "unit-param",
                         f"'double {match.group(1)}' carries a unit in "
                         "its name; use DecibelLoss/WattPower/Meters "
                         "so the type carries the unit")


def check_header_guard(relpath, lines, findings):
    if not relpath.endswith(".hh"):
        return
    guard = expected_guard(relpath)
    ifndef = f"#ifndef {guard}"
    define = f"#define {guard}"
    endif = f"#endif // {guard}"
    stripped = [line.rstrip("\n") for line in lines]
    try:
        at = stripped.index(ifndef)
    except ValueError:
        findings.add(relpath, 1, "header-guard",
                     f"missing '{ifndef}'")
        return
    if at + 1 >= len(stripped) or stripped[at + 1] != define:
        findings.add(relpath, at + 2, "header-guard",
                     f"'{ifndef}' not followed by '{define}'")
    tail = [line for line in stripped if line.strip()]
    if not tail or tail[-1] != endif:
        findings.add(relpath, len(stripped), "header-guard",
                     f"file must end with '{endif}'")


def check_include_order(relpath, lines, findings):
    includes = []  # (lineno, kind, target, preceded_by_blank)
    blank = False
    for lineno, raw in enumerate(lines, start=1):
        text = raw.rstrip("\n")
        match = INCLUDE_RE.match(text.strip())
        if match:
            includes.append((lineno, match.group(1), match.group(2),
                             blank))
            blank = False
        elif not text.strip():
            blank = True
        else:
            blank = False
    if not includes:
        return

    start = 0
    if relpath.endswith(".cc"):
        own = re.sub(r"\.cc$", ".hh", relpath)
        if own.startswith("src/"):
            own = own[len("src/"):]
        has_own = any(kind == '"' and target == own
                      for _, kind, target, _ in includes)
        first_lineno, first_kind, _, _ = includes[0]
        # A lone quoted include at the top is the primary header --
        # the header this file implements (gem5 style; it may be
        # shared by several .cc files, e.g. workloads/splash.hh).
        lone_primary = (first_kind == '"' and
                        (len(includes) == 1 or includes[1][3]))
        if has_own:
            _, kind, target, _ = includes[0]
            if kind != '"' or target != own:
                findings.add(relpath, first_lineno, "include-order",
                             f'own header "{own}" must be the first '
                             "include")
            start = 1
        elif lone_primary:
            start = 1

    groups = []
    for entry in includes[start:]:
        if entry[3] or not groups:
            groups.append([entry])
        else:
            groups[-1].append(entry)

    seen_quoted_group = False
    for group in groups:
        kinds = {kind for _, kind, _, _ in group}
        if len(kinds) > 1:
            findings.add(relpath, group[0][0], "include-order",
                         "mixed <system> and \"project\" includes in "
                         "one block; separate them with a blank line")
            continue
        kind = kinds.pop()
        if kind == '"':
            seen_quoted_group = True
        elif seen_quoted_group:
            findings.add(relpath, group[0][0], "include-order",
                         "<system> include block after a \"project\" "
                         "block; system includes come first")
        targets = [target for _, _, target, _ in group]
        if targets != sorted(targets):
            findings.add(relpath, group[0][0], "include-order",
                         "includes within a block must be sorted: " +
                         ", ".join(targets))


def check_format(relpath, lines, findings):
    for lineno, raw in enumerate(lines, start=1):
        text = raw.rstrip("\n")
        if "\t" in text:
            findings.add(relpath, lineno, "format", "tab character")
        if text != text.rstrip():
            findings.add(relpath, lineno, "format",
                         "trailing whitespace")
        if len(text) > MAX_LINE:
            findings.add(relpath, lineno, "format",
                         f"line is {len(text)} columns "
                         f"(max {MAX_LINE})")


def lint_file(path, root, findings):
    relpath = rel(path, root)
    try:
        lines = path.read_text(encoding="utf-8").splitlines(True)
    except (OSError, UnicodeDecodeError) as error:
        findings.add(relpath, 1, "io", f"unreadable: {error}")
        return
    code_lines = list(strip_comments(lines))
    check_raw_pow(relpath, code_lines, findings)
    check_float(relpath, code_lines, findings)
    check_unit_params(relpath, code_lines, findings)
    check_header_guard(relpath, lines, findings)
    check_include_order(relpath, lines, findings)
    check_format(relpath, lines, findings)


def collect_default(root):
    out = []
    for directory in DEFAULT_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for suffix in ("*.cc", "*.hh", "*.cpp"):
            out.extend(sorted(base.rglob(suffix)))
    # Fixture files carry deliberate violations for the linter's and
    # analyzer's own tests; never lint them as part of the tree.
    return [p for p in out
            if "lint_fixtures" not in p.parts
            and "analyze_fixtures" not in p.parts]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("files", nargs="*", type=Path,
                        help="files to lint (default: the tree)")
    args = parser.parse_args(argv)

    files = args.files or collect_default(args.root)
    if not files:
        print("mnoc-lint: no files to lint", file=sys.stderr)
        return 2

    findings = Findings()
    for path in files:
        lint_file(path, args.root, findings)
    status = findings.report()
    if status == 0:
        print(f"mnoc-lint: {len(files)} files clean")
    else:
        print(f"mnoc-lint: {len(findings.items)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
