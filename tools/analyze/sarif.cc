#include "tools/analyze/sarif.hh"

#include <sstream>

#include "common/io.hh"
#include "common/json.hh"

namespace mnoc::analyze {

namespace {

const char *kSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json";

} // namespace

std::string
sarifDocument(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": \"" << kSchema << "\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"mnoc-analyze\",\n"
       << "          \"version\": \"1.0.0\",\n"
       << "          \"rules\": [\n";
    const std::vector<RuleInfo> &rules = ruleCatalog();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const RuleInfo &rule = rules[i];
        os << "            {\n"
           << "              \"id\": \"" << escapeJson(rule.id)
           << "\",\n"
           << "              \"shortDescription\": {\"text\": \""
           << escapeJson(rule.summary) << "\"},\n"
           << "              \"defaultConfiguration\": "
           << "{\"level\": \"" << escapeJson(rule.level)
           << "\"},\n"
           << "              \"properties\": {\"family\": \""
           << escapeJson(rule.family) << "\"}\n"
           << "            }"
           << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &finding = findings[i];
        const RuleInfo *rule = findRule(finding.rule);
        const char *level =
            rule != nullptr ? rule->level : "warning";
        os << "        {\n"
           << "          \"ruleId\": \""
           << escapeJson(finding.rule) << "\",\n"
           << "          \"level\": \"" << level << "\",\n"
           << "          \"message\": {\"text\": \""
           << escapeJson(finding.message) << "\"},\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": "
           << "{\"uri\": \"" << escapeJson(finding.path)
           << "\"},\n"
           << "                \"region\": {\"startLine\": "
           << finding.line << "}\n"
           << "              }\n"
           << "            }\n"
           << "          ]\n"
           << "        }"
           << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

void
writeSarif(const std::string &path,
           const std::vector<Finding> &findings)
{
    FileWriter writer(path);
    writer.stream() << sarifDocument(findings);
    writer.close();
}

} // namespace mnoc::analyze
