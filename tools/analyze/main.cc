/**
 * @file
 * mnoc-analyze: compile_commands-driven static analysis of the
 * mnoc tree (determinism, layering, error-handling rule families).
 *
 *   mnoc-analyze --root DIR --compile-commands FILE
 *                [--baseline FILE] [--sarif OUT]
 *   mnoc-analyze --root DIR [FILE...]
 *
 * Findings print as `path:line: [rule] message`, sorted, and are
 * byte-identical at any MNOC_THREADS.  Exit status: 0 clean, 1 when
 * findings remain after baseline filtering, 2 on usage or I/O
 * errors.
 */

#include <filesystem>
#include <iostream>
#include <string>

#include "common/log.hh"
#include "tools/analyze/analyzer.hh"
#include "tools/analyze/sarif.hh"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: mnoc-analyze [options] [FILE...]\n"
       << "  --root DIR              repository root (default .)\n"
       << "  --compile-commands FILE translation units + include\n"
       << "                          path from the compilation\n"
       << "                          database\n"
       << "  --baseline FILE         suppress known findings\n"
       << "                          ('path [rule]' per line)\n"
       << "  --sarif OUT             also write SARIF 2.1.0\n"
       << "  --list-rules            print the rule catalog\n"
       << "  FILE...                 analyze explicit files\n"
       << "                          (under --root) instead of the\n"
       << "                          database worklist\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mnoc;
    using namespace mnoc::analyze;

    AnalyzerConfig config;
    config.root = ".";
    std::string sarif_path;
    bool list_rules = false;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> std::string {
                fatalIf(i + 1 >= argc,
                        arg + " requires a value");
                return argv[++i];
            };
            if (arg == "--root") {
                config.root = value();
            } else if (arg == "--compile-commands") {
                config.compileDb = value();
            } else if (arg == "--baseline") {
                config.baselinePath = value();
            } else if (arg == "--sarif") {
                sarif_path = value();
            } else if (arg == "--list-rules") {
                list_rules = true;
            } else if (arg == "-h" || arg == "--help") {
                usage(std::cout);
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                fatal("unknown option: " + arg +
                      " (try --help)");
            } else {
                config.files.push_back(arg);
            }
        }

        if (list_rules) {
            for (const RuleInfo &rule : ruleCatalog())
                std::cout << rule.id << " (" << rule.family
                          << ", " << rule.level
                          << "): " << rule.summary << "\n";
            return 0;
        }

        config.root = std::filesystem::absolute(config.root)
                          .lexically_normal()
                          .generic_string();

        AnalysisResult result = runAnalysis(config);
        for (const Finding &finding : result.findings)
            std::cout << finding.path << ":" << finding.line
                      << ": [" << finding.rule << "] "
                      << finding.message << "\n";
        if (!sarif_path.empty())
            writeSarif(sarif_path, result.findings);
        std::cerr << "mnoc-analyze: " << result.filesAnalyzed
                  << " file(s) analyzed, "
                  << result.findings.size() << " finding(s), "
                  << result.baselined << " baselined\n";
        return result.findings.empty() ? 0 : 1;
    } catch (const FatalError &err) {
        std::cerr << "mnoc-analyze: " << err.what() << "\n";
        return 2;
    }
}
