#include "tools/analyze/compile_db.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace mnoc::analyze {

namespace {

namespace fs = std::filesystem;

int
hexDigitValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Minimal JSON value: only what the database needs. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Scalar, ///< number / true / false (text kept, unused)
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    field(const std::string &name) const
    {
        for (const auto &[key, value] : members)
            if (key == name)
                return &value;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, const std::string &path)
        : text_(text), path_(path)
    {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipSpace();
        failIf(at_ != text_.size(), "trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal(path_ + ": malformed JSON at byte " +
              std::to_string(at_) + ": " + what);
    }

    void
    failIf(bool cond, const std::string &what) const
    {
        if (cond)
            fail(what);
    }

    void
    skipSpace()
    {
        while (at_ < text_.size() &&
               (text_[at_] == ' ' || text_[at_] == '\t' ||
                text_[at_] == '\n' || text_[at_] == '\r'))
            ++at_;
    }

    char
    peek()
    {
        skipSpace();
        failIf(at_ >= text_.size(), "unexpected end of input");
        return text_[at_];
    }

    void
    expect(char c)
    {
        failIf(peek() != c,
               std::string("expected '") + c + "', got '" +
                   text_[at_] + "'");
        ++at_;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue value;
            value.kind = JsonValue::Kind::String;
            value.str = parseString();
            return value;
        }
        // Scalar: number, true, false, null.
        JsonValue value;
        value.kind = JsonValue::Kind::Scalar;
        while (at_ < text_.size() &&
               std::string("-+.eE0123456789truefalsn")
                       .find(text_[at_]) != std::string::npos) {
            value.str += text_[at_];
            ++at_;
        }
        failIf(value.str.empty(), "unrecognized value");
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            failIf(at_ >= text_.size(),
                   "unterminated string literal");
            char c = text_[at_++];
            if (c == '"')
                break;
            if (c != '\\') {
                out += c;
                continue;
            }
            failIf(at_ >= text_.size(), "dangling escape");
            char esc = text_[at_++];
            switch (esc) {
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                failIf(at_ + 4 > text_.size(),
                       "truncated \\u escape");
                // Paths in the database are ASCII; decode only the
                // low byte and pass the rest through verbatim.
                int code = 0;
                for (int k = 0; k < 4; ++k) {
                    int digit = hexDigitValue(text_[at_++]);
                    failIf(digit < 0, "bad \\u escape digit");
                    code = code * 16 + digit;
                }
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                out += esc;
                break;
            }
        }
        return out;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++at_;
            return value;
        }
        while (true) {
            value.items.push_back(parseValue());
            char c = peek();
            ++at_;
            if (c == ']')
                return value;
            failIf(c != ',', "expected ',' or ']' in array");
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++at_;
            return value;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            value.members.emplace_back(key, parseValue());
            char c = peek();
            ++at_;
            if (c == '}')
                return value;
            failIf(c != ',', "expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    const std::string &path_;
    std::size_t at_ = 0;
};

/** Split a "command" string on unquoted whitespace (the database
 *  CMake writes never quotes paths; a best-effort split keeps the
 *  reader dependency-free). */
std::vector<std::string>
splitCommand(const std::string &command)
{
    std::vector<std::string> out;
    std::string arg;
    char quote = '\0';
    for (char c : command) {
        if (quote != '\0') {
            if (c == quote)
                quote = '\0';
            else
                arg += c;
            continue;
        }
        if (c == '"' || c == '\'') {
            quote = c;
            continue;
        }
        if (c == ' ' || c == '\t') {
            if (!arg.empty())
                out.push_back(arg);
            arg.clear();
            continue;
        }
        arg += c;
    }
    if (!arg.empty())
        out.push_back(arg);
    return out;
}

std::string
absolutize(const std::string &path, const std::string &base)
{
    fs::path p(path);
    if (p.is_absolute())
        return p.lexically_normal().generic_string();
    return (fs::path(base) / p).lexically_normal().generic_string();
}

} // namespace

std::vector<CompileCommand>
loadCompileDb(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open compilation database: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatalIf(in.bad(), "read error on " + path);
    const std::string text = buffer.str();

    JsonValue root = JsonParser(text, path).parse();
    fatalIf(root.kind != JsonValue::Kind::Array,
            path + ": compilation database must be a JSON array");

    std::vector<CompileCommand> out;
    for (const JsonValue &entry : root.items) {
        fatalIf(entry.kind != JsonValue::Kind::Object,
                path + ": database entries must be objects");
        const JsonValue *file = entry.field("file");
        const JsonValue *dir = entry.field("directory");
        fatalIf(file == nullptr ||
                    file->kind != JsonValue::Kind::String,
                path + ": entry lacks a string \"file\"");
        fatalIf(dir == nullptr ||
                    dir->kind != JsonValue::Kind::String,
                path + ": entry lacks a string \"directory\"");

        CompileCommand cmd;
        cmd.directory = dir->str;
        cmd.file = absolutize(file->str, cmd.directory);

        std::vector<std::string> args;
        if (const JsonValue *argv = entry.field("arguments");
            argv != nullptr &&
            argv->kind == JsonValue::Kind::Array) {
            for (const JsonValue &arg : argv->items)
                if (arg.kind == JsonValue::Kind::String)
                    args.push_back(arg.str);
        } else if (const JsonValue *command =
                       entry.field("command");
                   command != nullptr &&
                   command->kind == JsonValue::Kind::String) {
            args = splitCommand(command->str);
        } else {
            fatal(path + ": entry for " + cmd.file +
                  " has neither \"command\" nor \"arguments\"");
        }

        for (std::size_t i = 0; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "-I" || arg == "-isystem") {
                if (i + 1 < args.size())
                    cmd.includeDirs.push_back(
                        absolutize(args[++i], cmd.directory));
            } else if (arg.size() > 2 &&
                       arg.compare(0, 2, "-I") == 0) {
                cmd.includeDirs.push_back(
                    absolutize(arg.substr(2), cmd.directory));
            }
        }
        out.push_back(std::move(cmd));
    }
    return out;
}

} // namespace mnoc::analyze
