#include "tools/analyze/include_graph.hh"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <set>
#include <tuple>

namespace mnoc::analyze {

namespace {

namespace fs = std::filesystem;

/** Directories that hold project code; anything else a candidate
 *  resolves into (build trees, fetched third-party sources) is not
 *  subject to the layer order. */
const std::vector<std::string> kProjectTrees = {
    "src/", "tools/", "tests/", "bench/", "examples/",
};

/**
 * Find strongly connected module components with Tarjan's
 * algorithm.  Modules and edges arrive in sorted containers, so the
 * component list is deterministic.
 */
class SccFinder
{
  public:
    explicit SccFinder(
        const std::map<std::string, std::set<std::string>> &graph)
        : graph_(graph)
    {}

    std::vector<std::vector<std::string>>
    run()
    {
        for (const auto &[node, outs] : graph_)
            if (index_.find(node) == index_.end())
                visit(node);
        return sccs_;
    }

  private:
    void
    visit(const std::string &node)
    {
        index_[node] = lowlink_[node] = next_++;
        stack_.push_back(node);
        on_stack_.insert(node);

        auto it = graph_.find(node);
        if (it != graph_.end()) {
            for (const std::string &succ : it->second) {
                if (index_.find(succ) == index_.end()) {
                    visit(succ);
                    lowlink_[node] = std::min(lowlink_[node],
                                              lowlink_[succ]);
                } else if (on_stack_.count(succ) > 0) {
                    lowlink_[node] = std::min(lowlink_[node],
                                              index_[succ]);
                }
            }
        }

        if (lowlink_[node] != index_[node])
            return;
        std::vector<std::string> scc;
        while (true) {
            std::string top = stack_.back();
            stack_.pop_back();
            on_stack_.erase(top);
            scc.push_back(top);
            if (top == node)
                break;
        }
        if (scc.size() > 1) {
            std::sort(scc.begin(), scc.end());
            sccs_.push_back(std::move(scc));
        }
    }

    const std::map<std::string, std::set<std::string>> &graph_;
    std::map<std::string, int> index_;
    std::map<std::string, int> lowlink_;
    std::vector<std::string> stack_;
    std::set<std::string> on_stack_;
    int next_ = 0;
    std::vector<std::vector<std::string>> sccs_;
};

std::string
joinModules(const std::vector<std::string> &modules)
{
    std::string out;
    for (const std::string &module : modules) {
        if (!out.empty())
            out += ", ";
        out += module;
    }
    return out;
}

} // namespace

bool
inProjectTree(const std::string &relpath)
{
    for (const std::string &tree : kProjectTrees)
        if (relpath.compare(0, tree.size(), tree) == 0)
            return true;
    return false;
}

std::string
moduleOf(const std::string &relpath)
{
    std::size_t first = relpath.find('/');
    if (first == std::string::npos)
        return relpath;
    std::string top = relpath.substr(0, first);
    if (top != "src")
        return top;
    std::size_t second = relpath.find('/', first + 1);
    if (second == std::string::npos)
        return top;
    return relpath.substr(first + 1, second - first - 1);
}

int
layerRank(const std::string &module)
{
    if (module == "common")
        return 0;
    if (module == "optics" || module == "qap" || module == "noc" ||
        module == "sim" || module == "workloads")
        return 1;
    if (module == "core" || module == "faults" ||
        module == "runtime")
        return 2;
    return 3;
}

std::string
resolveInclude(const std::string &root,
               const std::string &from_rel,
               const std::string &target,
               const std::vector<std::string> &search_dirs)
{
    const fs::path root_path(root);
    std::vector<fs::path> dirs;
    dirs.push_back((root_path / from_rel).parent_path());
    for (const std::string &dir : search_dirs)
        dirs.emplace_back(dir);
    dirs.push_back(root_path / "src");
    dirs.push_back(root_path);

    for (const fs::path &dir : dirs) {
        fs::path candidate = (dir / target).lexically_normal();
        std::error_code ec;
        if (!fs::is_regular_file(candidate, ec))
            continue;
        std::string rel = candidate.lexically_relative(root_path)
                              .generic_string();
        if (rel.empty() || rel.compare(0, 2, "..") == 0)
            return std::string();
        if (!inProjectTree(rel))
            return std::string();
        return rel;
    }
    return std::string();
}

std::vector<Finding>
checkLayering(const std::vector<IncludeEdge> &edges)
{
    std::vector<Finding> out;
    std::map<std::string, std::set<std::string>> graph;

    for (const IncludeEdge &edge : edges) {
        std::string from_mod = moduleOf(edge.from);
        std::string to_mod = moduleOf(edge.to);
        if (from_mod != to_mod) {
            graph[from_mod].insert(to_mod);
            graph[to_mod]; // ensure the node exists
        }
        int from_rank = layerRank(from_mod);
        int to_rank = layerRank(to_mod);
        if (to_rank > from_rank)
            out.push_back(
                {edge.from, edge.line, "layering",
                 "module '" + from_mod + "' (layer " +
                     std::to_string(from_rank) + ") includes '" +
                     edge.to + "' from module '" + to_mod +
                     "' (layer " + std::to_string(to_rank) +
                     "); includes must point down the layer "
                     "order common <- optics/qap/noc/sim/"
                     "workloads <- core/faults/runtime <- "
                     "tools/bench/tests"});
    }

    for (const std::vector<std::string> &scc :
         SccFinder(graph).run()) {
        std::set<std::string> members(scc.begin(), scc.end());
        // Anchor the finding on the smallest in-cycle edge so the
        // report is stable across runs.
        const IncludeEdge *anchor = nullptr;
        for (const IncludeEdge &edge : edges) {
            std::string from_mod = moduleOf(edge.from);
            std::string to_mod = moduleOf(edge.to);
            if (from_mod == to_mod ||
                members.count(from_mod) == 0 ||
                members.count(to_mod) == 0)
                continue;
            if (anchor == nullptr ||
                std::tie(edge.from, edge.to, edge.line) <
                    std::tie(anchor->from, anchor->to,
                             anchor->line))
                anchor = &edge;
        }
        if (anchor != nullptr)
            out.push_back(
                {anchor->from, anchor->line, "include-cycle",
                 "modules {" + joinModules(scc) +
                     "} include each other in a cycle; the layer "
                     "order is only meaningful while module "
                     "dependencies stay acyclic"});
    }
    return out;
}

} // namespace mnoc::analyze
