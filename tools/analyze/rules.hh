/**
 * @file
 * Rule catalog and per-file rule engine of mnoc-analyze.
 *
 * Three rule families defend the repository's core guarantees:
 *
 *   determinism     parallel == serial bit-exactness of designs,
 *                   ledgers and reports at any MNOC_THREADS
 *                   (DESIGN.md §9): unordered-iteration, wall-clock,
 *                   unseeded-rng, shared-prng, raw-thread
 *   layering        the directed dependency order of the tree
 *                   (include_graph.hh): layering, include-cycle
 *   error-handling  fallible I/O must not fail silently:
 *                   discarded-result, unclosed-writer, raw-ofstream
 *
 * Every finding is reported as `path:line: [rule] message`; a
 * `// mnoc-analyze-ok(rule)` comment on the finding line or the
 * line above suppresses it at the source, and tools/analyze/
 * baseline.txt suppresses known findings per (path, rule) pair.
 */

#ifndef MNOC_TOOLS_ANALYZE_RULES_HH
#define MNOC_TOOLS_ANALYZE_RULES_HH

#include <string>
#include <vector>

#include "tools/analyze/lexer.hh"

namespace mnoc::analyze {

/** Static description of one rule (drives SARIF rule metadata). */
struct RuleInfo
{
    const char *id;
    const char *family;   ///< determinism | layering | error-handling
    const char *level;    ///< SARIF level: "error" or "warning"
    const char *summary;  ///< one-line description
};

/** All rules, sorted by id. */
const std::vector<RuleInfo> &ruleCatalog();

/** Metadata for @p rule id (nullptr when unknown). */
const RuleInfo *findRule(const std::string &rule);

/** One reported violation. */
struct Finding
{
    std::string path; ///< root-relative file
    int line = 0;
    std::string rule;
    std::string message;
};

/** Order findings by (path, line, rule, message): the output
 *  contract that makes runs byte-identical at any thread count. */
bool operator<(const Finding &a, const Finding &b);
bool operator==(const Finding &a, const Finding &b);

/**
 * Run every file-local rule over one lexed file.  @p relpath decides
 * rule applicability (tests are exempt from writer rules, bench
 * from wall-clock timing, and the choke-point files that own a
 * primitive are exempt from the rule that bans it elsewhere).
 * Inline mnoc-analyze-ok suppressions are already applied.
 */
std::vector<Finding> runFileRules(const std::string &relpath,
                                  const LexedFile &file);

} // namespace mnoc::analyze

#endif // MNOC_TOOLS_ANALYZE_RULES_HH
