#include "tools/analyze/rules.hh"

#include <cstddef>
#include <map>
#include <set>
#include <tuple>

namespace mnoc::analyze {

namespace {

/** Container types whose iteration order is unspecified. */
const std::set<std::string> kUnorderedTypes = {
    "std::unordered_map",      "std::unordered_set",
    "std::unordered_multimap", "std::unordered_multiset",
};

/** Types whose instances serialize state (drains of the
 *  unordered-iteration rule). */
const std::set<std::string> kSinkTypes = {
    "FileWriter",   "CsvWriter",    "MetricsRegistry",
    "EnergyLedger", "SpanRecorder", "std::ostream",
    "std::ofstream",
};

/** Free functions / helpers that serialize state. */
const std::set<std::string> kSinkCalls = {
    "saveTrace", "writePgmHeatmap", "escapeJson", "jsonNumber",
};

/** std RNG machinery that bypasses the seeded Prng. */
const std::set<std::string> kStdRng = {
    "std::rand",
    "std::srand",
    "srand",
    "std::random_device",
    "std::mt19937",
    "std::mt19937_64",
    "std::default_random_engine",
    "std::minstd_rand",
    "std::minstd_rand0",
};

/** Functions whose return value reports work the caller must keep
 *  (discarding them is either dead I/O or a swallowed result). */
const std::set<std::string> kMustUseCalls = {
    "loadJournal",
    "loadTrace",
    "mapTrace",
    "toTrace",
};

const std::vector<RuleInfo> kCatalog = {
    {"discarded-result", "error-handling", "warning",
     "result of a fallible I/O call is discarded"},
    {"include-cycle", "layering", "error",
     "modules include each other in a cycle"},
    {"layering", "layering", "error",
     "include points up the layer order"},
    {"raw-ofstream", "error-handling", "warning",
     "raw std::ofstream bypasses the FileWriter choke point"},
    {"raw-thread", "determinism", "error",
     "raw thread primitive bypasses the shared ThreadPool"},
    {"shared-prng", "determinism", "error",
     "Prng shared by reference across ThreadPool tasks"},
    {"unclosed-writer", "error-handling", "warning",
     "FileWriter/JournalWriter is never close()d on the checked "
     "path"},
    {"unordered-iteration", "determinism", "error",
     "unordered-container iteration reaches a serialization sink"},
    {"unseeded-rng", "determinism", "error",
     "std RNG machinery bypasses the seeded Prng"},
    {"wall-clock", "determinism", "error",
     "wall-clock read outside trace_span/manifest"},
};

/** Top-level source category of a root-relative path. */
std::string
categoryOf(const std::string &relpath)
{
    std::size_t slash = relpath.find('/');
    return slash == std::string::npos ? std::string()
                                      : relpath.substr(0, slash);
}

/** True when @p text is @p word or ends with "::word". */
bool
endsWithWord(const std::string &text, const std::string &word)
{
    if (text == word)
        return true;
    if (text.size() <= word.size() + 2)
        return false;
    std::size_t at = text.size() - word.size();
    return text.compare(at, word.size(), word) == 0 &&
           text.compare(at - 2, 2, "::") == 0;
}

/** Last ::-segment of a qualified identifier. */
std::string
lastSegment(const std::string &text)
{
    std::size_t at = text.rfind("::");
    return at == std::string::npos ? text : text.substr(at + 2);
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/** Index of the token matching @p open_tok ('(' '<' '{' '[') at
 *  @p at, or kNpos when unbalanced. */
std::size_t
matchForward(const std::vector<Token> &toks, std::size_t at,
             char open_tok, char close_tok)
{
    int depth = 0;
    for (std::size_t i = at; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (toks[i].text[0] == open_tok)
            ++depth;
        else if (toks[i].text[0] == close_tok && --depth == 0)
            return i;
    }
    return kNpos;
}

bool
isPunct(const Token &tok, char c)
{
    return tok.kind == TokKind::Punct && tok.text[0] == c;
}

/**
 * Collect names declared with one of @p types: after the type token
 * an optional template argument list, cv/ref decorations, then the
 * declared identifier.  Returns name -> declaration token indices.
 */
std::map<std::string, std::vector<std::size_t>>
declaredNames(const std::vector<Token> &toks,
              const std::set<std::string> &types)
{
    std::map<std::string, std::vector<std::size_t>> out;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier)
            continue;
        bool is_type = types.count(toks[i].text) > 0;
        for (const std::string &type : types)
            is_type = is_type || endsWithWord(toks[i].text, type);
        if (!is_type)
            continue;
        std::size_t j = i + 1;
        if (j < toks.size() && isPunct(toks[j], '<')) {
            j = matchForward(toks, j, '<', '>');
            if (j == kNpos)
                continue;
            ++j;
        }
        while (j < toks.size() &&
               (isPunct(toks[j], '&') || isPunct(toks[j], '*') ||
                (toks[j].kind == TokKind::Identifier &&
                 toks[j].text == "const")))
            ++j;
        if (j < toks.size() &&
            toks[j].kind == TokKind::Identifier)
            out[toks[j].text].push_back(j);
    }
    return out;
}

/** Token range [first, last) of the body following token @p at
 *  (either a balanced brace block or a single statement up to ';');
 *  returns {kNpos, kNpos} when the body is unterminated. */
std::pair<std::size_t, std::size_t>
bodyRange(const std::vector<Token> &toks, std::size_t at)
{
    if (at >= toks.size())
        return {kNpos, kNpos};
    if (isPunct(toks[at], '{')) {
        std::size_t close = matchForward(toks, at, '{', '}');
        if (close == kNpos)
            return {kNpos, kNpos};
        return {at + 1, close};
    }
    for (std::size_t i = at; i < toks.size(); ++i)
        if (isPunct(toks[i], ';'))
            return {at, i};
    return {kNpos, kNpos};
}

/** The rule engine for one file; rule methods append findings. */
class FileChecker
{
  public:
    FileChecker(std::string relpath, const LexedFile &file)
        : relpath_(std::move(relpath)), file_(file),
          toks_(file.tokens), category_(categoryOf(relpath_))
    {}

    std::vector<Finding>
    run()
    {
        checkUnorderedIteration();
        checkWallClock();
        checkUnseededRng();
        checkRawThread();
        checkRawOfstream();
        checkSharedPrng();
        checkDiscardedResult();
        checkUnclosedWriter();
        return applySuppressions();
    }

  private:
    void
    add(int line, const std::string &rule,
        const std::string &message)
    {
        findings_.push_back({relpath_, line, rule, message});
    }

    bool
    inCategory(std::initializer_list<const char *> cats) const
    {
        for (const char *cat : cats)
            if (category_ == cat)
                return true;
        return false;
    }

    bool
    pathIsOneOf(std::initializer_list<const char *> paths) const
    {
        for (const char *path : paths)
            if (relpath_ == path)
                return true;
        return false;
    }

    /** Sink words visible in this file: sink types, sink calls,
     *  variables declared with a sink type, and per-file
     *  mnoc-analyze-sink annotations. */
    std::set<std::string>
    sinkWords() const
    {
        std::set<std::string> out(kSinkTypes);
        out.insert(kSinkCalls.begin(), kSinkCalls.end());
        out.insert(file_.fileSinks.begin(), file_.fileSinks.end());
        for (const auto &[name, decls] :
             declaredNames(toks_, kSinkTypes))
            out.insert(name);
        return out;
    }

    /** First sink identifier inside [first, last), or "" . */
    std::string
    findSink(std::size_t first, std::size_t last,
             const std::set<std::string> &sinks) const
    {
        for (std::size_t i = first;
             i < last && i < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Identifier)
                continue;
            if (sinks.count(toks_[i].text) > 0 ||
                sinks.count(lastSegment(toks_[i].text)) > 0)
                return toks_[i].text;
        }
        return std::string();
    }

    void
    checkUnorderedIteration()
    {
        if (!inCategory({"src", "tools", "bench"}))
            return;
        auto unordered = declaredNames(toks_, kUnorderedTypes);
        std::set<std::string> sinks = sinkWords();

        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Identifier ||
                toks_[i].text != "for" ||
                !isPunct(toks_[i + 1], '('))
                continue;
            std::size_t close =
                matchForward(toks_, i + 1, '(', ')');
            if (close == kNpos)
                continue;

            // Range-for: the range expression after the ':' at
            // paren depth 1; classic for: the whole control clause
            // (catches `it = m.begin()` iterator loops).
            std::size_t range_first = i + 2;
            int depth = 0;
            for (std::size_t k = i + 1; k < close; ++k) {
                if (isPunct(toks_[k], '('))
                    ++depth;
                else if (isPunct(toks_[k], ')'))
                    --depth;
                else if (depth == 1 && isPunct(toks_[k], ':')) {
                    range_first = k + 1;
                    break;
                }
            }

            std::string container;
            for (std::size_t k = range_first;
                 k < close && container.empty(); ++k) {
                if (toks_[k].kind != TokKind::Identifier)
                    continue;
                if (unordered.count(toks_[k].text) > 0)
                    container = toks_[k].text;
                for (const std::string &type : kUnorderedTypes)
                    if (endsWithWord(toks_[k].text, type))
                        container = toks_[k].text;
            }
            if (container.empty())
                continue;

            auto [first, last] = bodyRange(toks_, close + 1);
            if (first == kNpos)
                continue;
            std::string sink = findSink(first, last, sinks);
            if (sink.empty())
                continue;
            add(toks_[i].line, "unordered-iteration",
                "iteration over unordered container '" + container +
                    "' reaches serialization sink '" + sink +
                    "'; unordered iteration order leaks into "
                    "output -- traverse a sorted view instead");
        }
    }

    void
    checkWallClock()
    {
        if (!inCategory({"src", "tools"}))
            return;
        if (pathIsOneOf({"src/common/trace_span.cc",
                         "src/common/trace_span.hh",
                         "src/common/manifest.cc"}))
            return;
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &tok = toks_[i];
            if (tok.kind != TokKind::Identifier)
                continue;
            bool chrono_now =
                tok.text.compare(0, 13, "std::chrono::") == 0 &&
                endsWithWord(tok.text, "now");
            bool c_clock = false;
            if ((tok.text == "time" || tok.text == "std::time" ||
                 tok.text == "clock" ||
                 tok.text == "std::clock") &&
                i + 1 < toks_.size() &&
                isPunct(toks_[i + 1], '(')) {
                // Skip member calls: obj.time(...) is not libc.
                c_clock = i == 0 || (!isPunct(toks_[i - 1], '.') &&
                                     !isPunct(toks_[i - 1], '>'));
            }
            bool posix_clock = tok.text == "gettimeofday" ||
                               tok.text == "clock_gettime" ||
                               tok.text == "localtime" ||
                               tok.text == "gmtime";
            if (chrono_now || c_clock || posix_clock)
                add(tok.line, "wall-clock",
                    "'" + tok.text +
                        "' reads the wall clock in a result path; "
                        "only trace_span/manifest may observe time "
                        "(DESIGN.md §10)");
        }
    }

    void
    checkUnseededRng()
    {
        if (pathIsOneOf({"src/common/prng.hh"}))
            return;
        for (const Token &tok : toks_) {
            if (tok.kind != TokKind::Identifier)
                continue;
            if (kStdRng.count(tok.text) > 0)
                add(tok.line, "unseeded-rng",
                    "'" + tok.text +
                        "' bypasses the seeded Prng in "
                        "common/prng.hh; draws must be "
                        "reproducible");
        }
    }

    void
    checkRawThread()
    {
        if (pathIsOneOf({"src/common/thread_pool.hh",
                         "src/common/thread_pool.cc",
                         "tests/test_thread_pool.cc"}))
            return;
        for (const Token &tok : toks_) {
            if (tok.kind != TokKind::Identifier)
                continue;
            bool hit =
                tok.text == "std::thread" ||
                tok.text.compare(0, 13, "std::thread::") == 0 ||
                tok.text == "std::jthread" ||
                tok.text == "std::async";
            if (hit)
                add(tok.line, "raw-thread",
                    "'" + tok.text +
                        "' bypasses the shared ThreadPool in "
                        "common/thread_pool.hh; raw threads break "
                        "the deterministic-parallelism contract "
                        "(DESIGN.md §9)");
        }
    }

    void
    checkRawOfstream()
    {
        if (category_ == "tests" ||
            pathIsOneOf({"src/common/io.hh", "src/common/io.cc"}))
            return;
        for (const Token &tok : toks_)
            if (tok.kind == TokKind::Identifier &&
                tok.text == "std::ofstream")
                add(tok.line, "raw-ofstream",
                    "raw std::ofstream drops write errors; use "
                    "FileWriter from common/io.hh");
    }

    void
    checkSharedPrng()
    {
        if (!inCategory({"src", "tools", "bench"}))
            return;
        auto prngs = declaredNames(
            toks_, std::set<std::string>{"Prng", "mnoc::Prng"});
        if (prngs.empty())
            return;

        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Identifier)
                continue;
            std::string callee = lastSegment(toks_[i].text);
            if ((callee != "submit" && callee != "parallelFor") ||
                !isPunct(toks_[i + 1], '('))
                continue;
            std::size_t close =
                matchForward(toks_, i + 1, '(', ')');
            if (close == kNpos)
                continue;
            scanLambdas(i + 2, close, prngs);
        }
    }

    /** Flag by-reference Prng captures in lambdas found inside the
     *  token range [first, last) of a submit/parallelFor argument
     *  list. */
    void
    scanLambdas(
        std::size_t first, std::size_t last,
        const std::map<std::string, std::vector<std::size_t>>
            &prngs)
    {
        for (std::size_t i = first; i < last; ++i) {
            if (!isPunct(toks_[i], '['))
                continue;
            // A capture list follows '(' ',' or an operator, never
            // an identifier or a closing bracket (array indexing).
            if (i > 0 && (toks_[i - 1].kind == TokKind::Identifier ||
                          isPunct(toks_[i - 1], ')') ||
                          isPunct(toks_[i - 1], ']')))
                continue;
            std::size_t cap_end = matchForward(toks_, i, '[', ']');
            if (cap_end == kNpos || cap_end > last)
                continue;

            bool ref_default = false;
            std::set<std::string> ref_names;
            for (std::size_t k = i + 1; k < cap_end; ++k) {
                if (!isPunct(toks_[k], '&'))
                    continue;
                if (k + 1 < cap_end &&
                    toks_[k + 1].kind == TokKind::Identifier)
                    ref_names.insert(toks_[k + 1].text);
                else
                    ref_default = true;
            }
            if (!ref_default && ref_names.empty())
                continue;

            // Body: optional parameter list, then the brace block.
            std::size_t j = cap_end + 1;
            if (j < toks_.size() && isPunct(toks_[j], '(')) {
                j = matchForward(toks_, j, '(', ')');
                if (j == kNpos)
                    continue;
                ++j;
            }
            while (j < toks_.size() && !isPunct(toks_[j], '{') &&
                   !isPunct(toks_[j], ';'))
                ++j;
            if (j >= toks_.size() || !isPunct(toks_[j], '{'))
                continue;
            std::size_t body_end =
                matchForward(toks_, j, '{', '}');
            if (body_end == kNpos)
                continue;

            for (const auto &[name, decls] : prngs) {
                bool inside = false;
                for (std::size_t at : decls)
                    inside = inside || (at > i && at < body_end);
                if (inside)
                    continue;
                bool captured = ref_default ||
                                ref_names.count(name) > 0;
                if (!captured)
                    continue;
                for (std::size_t k = j + 1; k < body_end; ++k) {
                    if (toks_[k].kind == TokKind::Identifier &&
                        toks_[k].text == name) {
                        add(toks_[i].line, "shared-prng",
                            "Prng '" + name +
                                "' is captured by reference into a "
                                "ThreadPool task; concurrent draws "
                                "make results schedule-dependent -- "
                                "fork a per-task stream with "
                                "deriveSeed (DESIGN.md §9)");
                        break;
                    }
                }
            }
        }
    }

    void
    checkDiscardedResult()
    {
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Identifier)
                continue;
            if (kMustUseCalls.count(lastSegment(toks_[i].text)) ==
                0)
                continue;
            if (!isPunct(toks_[i + 1], '('))
                continue;
            if (i > 0 && (isPunct(toks_[i - 1], '.') ||
                          isPunct(toks_[i - 1], '>')))
                continue;
            std::size_t close =
                matchForward(toks_, i + 1, '(', ')');
            if (close == kNpos || close + 1 >= toks_.size() ||
                !isPunct(toks_[close + 1], ';'))
                continue;
            bool statement =
                i == 0 || isPunct(toks_[i - 1], ';') ||
                isPunct(toks_[i - 1], '{') ||
                isPunct(toks_[i - 1], '}') ||
                isPunct(toks_[i - 1], ')') ||
                (toks_[i - 1].kind == TokKind::Identifier &&
                 (toks_[i - 1].text == "else" ||
                  toks_[i - 1].text == "do"));
            if (statement)
                add(toks_[i].line, "discarded-result",
                    "result of '" + lastSegment(toks_[i].text) +
                        "' is discarded; the call exists only for "
                        "its return value");
        }
    }

    void
    checkUnclosedWriter()
    {
        if (category_ == "tests" ||
            pathIsOneOf({"src/common/io.hh", "src/common/io.cc",
                         "src/common/journal.hh",
                         "src/common/journal.cc"}))
            return;
        for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Identifier)
                continue;
            std::string writer_type;
            if (endsWithWord(toks_[i].text, "FileWriter"))
                writer_type = "FileWriter";
            else if (endsWithWord(toks_[i].text, "JournalWriter"))
                writer_type = "JournalWriter";
            else
                continue;
            const Token &name = toks_[i + 1];
            if (name.kind != TokKind::Identifier ||
                (!isPunct(toks_[i + 2], '(') &&
                 !isPunct(toks_[i + 2], '{')))
                continue;
            bool closed = false;
            for (std::size_t k = 0; k + 2 < toks_.size(); ++k)
                if (toks_[k].kind == TokKind::Identifier &&
                    toks_[k].text == name.text &&
                    isPunct(toks_[k + 1], '.') &&
                    toks_[k + 2].text == "close") {
                    closed = true;
                    break;
                }
            if (!closed)
                add(name.line, "unclosed-writer",
                    writer_type + " '" + name.text +
                        "' is never close()d; its destructor only "
                        "warn()s, so a full disk would truncate "
                        "the artifact silently");
        }
    }

    std::vector<Finding>
    applySuppressions() const
    {
        std::vector<Finding> out;
        for (const Finding &finding : findings_) {
            bool suppressed = false;
            for (int line : {finding.line, finding.line - 1}) {
                auto it = file_.okLines.find(line);
                if (it == file_.okLines.end())
                    continue;
                if (it->second.count(finding.rule) > 0 ||
                    it->second.count("*") > 0)
                    suppressed = true;
            }
            if (!suppressed)
                out.push_back(finding);
        }
        return out;
    }

    std::string relpath_;
    const LexedFile &file_;
    const std::vector<Token> &toks_;
    std::string category_;
    std::vector<Finding> findings_;
};

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    return kCatalog;
}

const RuleInfo *
findRule(const std::string &rule)
{
    for (const RuleInfo &info : kCatalog)
        if (rule == info.id)
            return &info;
    return nullptr;
}

bool
operator<(const Finding &a, const Finding &b)
{
    return std::tie(a.path, a.line, a.rule, a.message) <
           std::tie(b.path, b.line, b.rule, b.message);
}

bool
operator==(const Finding &a, const Finding &b)
{
    return std::tie(a.path, a.line, a.rule, a.message) ==
           std::tie(b.path, b.line, b.rule, b.message);
}

std::vector<Finding>
runFileRules(const std::string &relpath, const LexedFile &file)
{
    return FileChecker(relpath, file).run();
}

} // namespace mnoc::analyze
