/**
 * @file
 * Token-accurate C++ lexer for mnoc-analyze.
 *
 * The regex linter (tools/mnoc_lint.py) blanks comments and strings
 * line by line; this lexer goes one step further and produces a real
 * token stream, so rules can reason about declarations, balanced
 * brackets and qualified names instead of raw text.  Qualified
 * identifiers are merged into single tokens ("std::chrono::
 * steady_clock::now" is one identifier), which keeps the rule code
 * free of :: bookkeeping.
 *
 * Comments are not discarded silently: the lexer collects the two
 * in-source annotations of the analyzer,
 *
 *   // mnoc-analyze-ok(rule[, rule...])   suppress findings on this
 *                                         line and the next
 *   // mnoc-analyze-sink(Name)            register Name as a
 *                                         serialization sink for
 *                                         this file
 *
 * and records #include directives (with line numbers) for the
 * include-graph pass.
 */

#ifndef MNOC_TOOLS_ANALYZE_LEXER_HH
#define MNOC_TOOLS_ANALYZE_LEXER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mnoc::analyze {

/** Classification of one token. */
enum class TokKind
{
    Identifier, ///< identifier or keyword (possibly ::-qualified)
    Number,     ///< numeric literal (incl. digit separators)
    String,     ///< string literal (contents dropped)
    CharLit,    ///< character literal
    Punct,      ///< single punctuation character
};

/** One lexed token with its 1-based source line. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;
};

/** One #include directive. */
struct IncludeDirective
{
    std::string target; ///< path between the delimiters
    bool angled = false; ///< <...> (true) vs "..." (false)
    int line = 0;
};

/** A fully lexed source file. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<IncludeDirective> includes;
    /** Rules suppressed per line by mnoc-analyze-ok comments ("*"
     *  suppresses every rule). */
    std::map<int, std::set<std::string>> okLines;
    /** Extra sink identifiers registered by mnoc-analyze-sink. */
    std::set<std::string> fileSinks;
};

/** Lex @p text (the full contents of one source file). */
LexedFile lexSource(const std::string &text);

} // namespace mnoc::analyze

#endif // MNOC_TOOLS_ANALYZE_LEXER_HH
