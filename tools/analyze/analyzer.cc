#include "tools/analyze/analyzer.hh"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "tools/analyze/compile_db.hh"
#include "tools/analyze/include_graph.hh"

namespace mnoc::analyze {

namespace {

namespace fs = std::filesystem;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open source file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatalIf(in.bad(), "read error on " + path);
    return buffer.str();
}

/** Root-relative form of @p abs, or "" when outside @p root. */
std::string
rootRelative(const fs::path &root, const std::string &abs)
{
    std::string rel = fs::path(abs)
                          .lexically_normal()
                          .lexically_relative(root)
                          .generic_string();
    if (rel.empty() || rel == "." || rel.compare(0, 2, "..") == 0)
        return std::string();
    return rel;
}

std::string
trim(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return std::string();
    std::size_t last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

/** Per-file slot filled by one parallelFor iteration. */
struct FileSlot
{
    std::vector<Finding> findings;
    std::vector<IncludeDirective> includes;
    std::map<int, std::set<std::string>> okLines;
};

using OkLineMap =
    std::map<std::string, std::map<int, std::set<std::string>>>;

/** True when @p finding is suppressed by a mnoc-analyze-ok comment
 *  on its line or the line above. */
bool
inlineSuppressed(const Finding &finding, const OkLineMap &ok)
{
    auto file_it = ok.find(finding.path);
    if (file_it == ok.end())
        return false;
    for (int line : {finding.line, finding.line - 1}) {
        auto line_it = file_it->second.find(line);
        if (line_it == file_it->second.end())
            continue;
        if (line_it->second.count(finding.rule) > 0 ||
            line_it->second.count("*") > 0)
            return true;
    }
    return false;
}

} // namespace

Baseline
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open baseline: " + path);

    Baseline out;
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        std::string line = raw;
        if (std::size_t hash = line.find('#');
            hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        std::size_t open = line.rfind('[');
        fatalIf(open == std::string::npos || open == 0 ||
                    line.back() != ']',
                path + ":" + std::to_string(lineno) +
                    ": baseline lines read 'path [rule]'");
        std::string file = trim(line.substr(0, open));
        std::string rule =
            line.substr(open + 1, line.size() - open - 2);
        fatalIf(file.empty(),
                path + ":" + std::to_string(lineno) +
                    ": baseline lines read 'path [rule]'");
        fatalIf(findRule(rule) == nullptr,
                path + ":" + std::to_string(lineno) +
                    ": unknown rule '" + rule + "'");
        out.emplace(file, rule);
    }
    fatalIf(in.bad(), "read error on " + path);
    return out;
}

AnalysisResult
runAnalysis(const AnalyzerConfig &config)
{
    const fs::path root = fs::path(config.root).lexically_normal();
    const std::string root_str = root.generic_string();

    std::vector<std::string> search_dirs;
    std::map<std::string, std::string> initial; // rel -> abs

    if (!config.compileDb.empty()) {
        for (const CompileCommand &cmd :
             loadCompileDb(config.compileDb)) {
            for (const std::string &dir : cmd.includeDirs)
                search_dirs.push_back(dir);
            std::string rel = rootRelative(root, cmd.file);
            if (!rel.empty() && inProjectTree(rel))
                initial[rel] = fs::path(cmd.file)
                                   .lexically_normal()
                                   .generic_string();
        }
    }
    for (const std::string &file : config.files) {
        std::string abs =
            fs::absolute(file).lexically_normal().generic_string();
        std::string rel = rootRelative(root, abs);
        fatalIf(rel.empty(),
                "file lies outside the analysis root: " + file);
        initial[rel] = abs;
    }
    fatalIf(initial.empty(),
            "nothing to analyze: pass --compile-commands or "
            "explicit files");
    std::sort(search_dirs.begin(), search_dirs.end());
    search_dirs.erase(
        std::unique(search_dirs.begin(), search_dirs.end()),
        search_dirs.end());

    AnalysisResult result;
    std::vector<Finding> findings;
    std::vector<IncludeEdge> edges;
    OkLineMap ok_by_file;
    std::set<std::string> seen;
    std::vector<std::pair<std::string, std::string>> pending(
        initial.begin(), initial.end());
    for (const auto &[rel, abs] : pending)
        seen.insert(rel);

    // Worklist rounds: analyze the batch in parallel, merge slots
    // in index order, then queue headers the batch discovered.
    while (!pending.empty()) {
        std::vector<FileSlot> slots(pending.size());
        ThreadPool::global().parallelFor(
            static_cast<long long>(pending.size()),
            [&](long long i) {
                const auto &[rel, abs] =
                    pending[static_cast<std::size_t>(i)];
                LexedFile lexed = lexSource(readFile(abs));
                FileSlot &slot =
                    slots[static_cast<std::size_t>(i)];
                slot.findings = runFileRules(rel, lexed);
                slot.includes = std::move(lexed.includes);
                slot.okLines = std::move(lexed.okLines);
            });

        std::vector<std::pair<std::string, std::string>> next;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            const std::string &rel = pending[i].first;
            FileSlot &slot = slots[i];
            ++result.filesAnalyzed;
            findings.insert(findings.end(),
                            slot.findings.begin(),
                            slot.findings.end());
            if (!slot.okLines.empty())
                ok_by_file[rel] = std::move(slot.okLines);
            for (const IncludeDirective &inc : slot.includes) {
                std::string to = resolveInclude(
                    root_str, rel, inc.target, search_dirs);
                if (to.empty())
                    continue;
                edges.push_back({rel, to, inc.line});
                if (seen.insert(to).second)
                    next.emplace_back(
                        to, (root / to).generic_string());
            }
        }
        std::sort(next.begin(), next.end());
        pending = std::move(next);
    }

    std::sort(edges.begin(), edges.end(),
              [](const IncludeEdge &a, const IncludeEdge &b) {
                  return std::tie(a.from, a.to, a.line) <
                         std::tie(b.from, b.to, b.line);
              });
    for (const Finding &finding : checkLayering(edges))
        if (!inlineSuppressed(finding, ok_by_file))
            findings.push_back(finding);

    std::sort(findings.begin(), findings.end());
    findings.erase(
        std::unique(findings.begin(), findings.end()),
        findings.end());

    Baseline baseline;
    if (!config.baselinePath.empty())
        baseline = loadBaseline(config.baselinePath);
    for (Finding &finding : findings) {
        if (baseline.count({finding.path, finding.rule}) > 0)
            ++result.baselined;
        else
            result.findings.push_back(std::move(finding));
    }
    return result;
}

} // namespace mnoc::analyze
