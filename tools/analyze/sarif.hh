/**
 * @file
 * SARIF 2.1.0 export of mnoc-analyze findings, the interchange
 * format CI code-scanning services ingest.  One run per report: the
 * tool driver carries the full rule catalog, every finding becomes
 * a result with a root-relative artifact URI and a start line.
 */

#ifndef MNOC_TOOLS_ANALYZE_SARIF_HH
#define MNOC_TOOLS_ANALYZE_SARIF_HH

#include <string>
#include <vector>

#include "tools/analyze/rules.hh"

namespace mnoc::analyze {

/** The SARIF document for @p findings, as a string (findings must
 *  already be sorted; the document is byte-stable). */
std::string sarifDocument(const std::vector<Finding> &findings);

/** Write sarifDocument() to @p path via FileWriter (throws on I/O
 *  failure, including failures surfaced at close). */
void writeSarif(const std::string &path,
                const std::vector<Finding> &findings);

} // namespace mnoc::analyze

#endif // MNOC_TOOLS_ANALYZE_SARIF_HH
