#include "tools/analyze/lexer.hh"

#include <cctype>

namespace mnoc::analyze {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 ||
           c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           c == '_';
}

bool
numberChar(char c)
{
    // Digit separators and exponent letters keep a literal like
    // 0x1p-3 or 1'000'000 in one token; the trailing sign of an
    // exponent is handled by the caller.
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           c == '.' || c == '\'';
}

/** Collect the annotations carried by one comment. */
void
scanComment(const std::string &text, int line, LexedFile &out)
{
    auto names = [&](const std::string &marker,
                     std::vector<std::string> &list) {
        std::size_t at = text.find(marker);
        while (at != std::string::npos) {
            std::size_t open = at + marker.size();
            std::size_t close = text.find(')', open);
            if (close == std::string::npos)
                return;
            std::string inner = text.substr(open, close - open);
            std::string item;
            for (char c : inner + ",") {
                if (c == ',') {
                    if (!item.empty())
                        list.push_back(item);
                    item.clear();
                } else if (c != ' ' && c != '\t') {
                    item += c;
                }
            }
            at = text.find(marker, close);
        }
    };

    std::vector<std::string> ok;
    names("mnoc-analyze-ok(", ok);
    for (const std::string &rule : ok)
        out.okLines[line].insert(rule);

    std::vector<std::string> sinks;
    names("mnoc-analyze-sink(", sinks);
    for (const std::string &sink : sinks)
        out.fileSinks.insert(sink);
}

} // namespace

LexedFile
lexSource(const std::string &text)
{
    LexedFile out;
    std::vector<Token> raw;
    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;
    bool at_line_start = true;

    auto advanceNewline = [&](std::size_t pos) {
        if (text[pos] == '\n') {
            ++line;
            at_line_start = true;
        }
    };

    while (i < n) {
        char c = text[i];

        // Backslash-newline continuation.
        if (c == '\\' && i + 1 < n && text[i + 1] == '\n') {
            ++line;
            i += 2;
            continue;
        }
        if (c == '\n') {
            ++line;
            at_line_start = true;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t start = i;
            int comment_line = line;
            i += 2;
            while (i < n && text[i] != '\n')
                ++i;
            scanComment(text.substr(start, i - start), comment_line,
                        out);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t start = i;
            int comment_line = line;
            i += 2;
            while (i + 1 < n &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                advanceNewline(i);
                ++i;
            }
            i = i + 1 < n ? i + 2 : n;
            scanComment(text.substr(start, i - start), comment_line,
                        out);
            continue;
        }

        // Preprocessor directive: consume the logical line; keep
        // only #include targets.
        if (c == '#' && at_line_start) {
            int directive_line = line;
            std::string logical;
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n &&
                    text[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    break;
                logical += text[i];
                ++i;
            }
            std::size_t at = logical.find_first_not_of(" \t", 1);
            if (at != std::string::npos &&
                logical.compare(at, 7, "include") == 0) {
                std::size_t open =
                    logical.find_first_of("<\"", at + 7);
                if (open != std::string::npos) {
                    char closer = logical[open] == '<' ? '>' : '"';
                    std::size_t close =
                        logical.find(closer, open + 1);
                    if (close != std::string::npos)
                        out.includes.push_back(
                            {logical.substr(open + 1,
                                            close - open - 1),
                             logical[open] == '<', directive_line});
                }
            }
            continue;
        }

        at_line_start = false;

        // String literal (incl. raw strings).
        if (c == '"') {
            bool is_raw =
                !raw.empty() && raw.back().kind == TokKind::Identifier &&
                !raw.back().text.empty() &&
                raw.back().text.back() == 'R';
            int tok_line = line;
            ++i;
            if (is_raw) {
                std::string delim;
                while (i < n && text[i] != '(')
                    delim += text[i++];
                std::string closer = ")" + delim + "\"";
                std::size_t end = text.find(closer, i);
                if (end == std::string::npos) {
                    i = n;
                } else {
                    for (std::size_t k = i; k < end; ++k)
                        advanceNewline(k);
                    i = end + closer.size();
                }
            } else {
                while (i < n && text[i] != '"') {
                    if (text[i] == '\\' && i + 1 < n)
                        ++i;
                    ++i;
                }
                if (i < n)
                    ++i;
            }
            raw.push_back({TokKind::String, "\"\"", tok_line});
            continue;
        }
        // Character literal (not a digit separator: separators are
        // consumed inside number literals below).
        if (c == '\'') {
            int tok_line = line;
            ++i;
            while (i < n && text[i] != '\'') {
                if (text[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n)
                ++i;
            raw.push_back({TokKind::CharLit, "''", tok_line});
            continue;
        }

        if (identStart(c)) {
            std::size_t start = i;
            while (i < n && identChar(text[i]))
                ++i;
            raw.push_back({TokKind::Identifier,
                           text.substr(start, i - start), line});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])) !=
                 0)) {
            std::size_t start = i;
            while (i < n && numberChar(text[i])) {
                char cur = text[i];
                ++i;
                // Exponent sign: 1e-3, 0x1p+4.
                if ((cur == 'e' || cur == 'E' || cur == 'p' ||
                     cur == 'P') &&
                    i < n && (text[i] == '+' || text[i] == '-'))
                    ++i;
            }
            raw.push_back({TokKind::Number,
                           text.substr(start, i - start), line});
            continue;
        }

        raw.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }

    // Merge qualified names: Identifier :: Identifier (repeatedly)
    // becomes one identifier token, so rules match "std::thread" or
    // "std::chrono::steady_clock::now" directly.
    out.tokens.reserve(raw.size());
    for (std::size_t k = 0; k < raw.size(); ++k) {
        Token tok = raw[k];
        if (tok.kind == TokKind::Identifier) {
            while (k + 3 < raw.size() &&
                   raw[k + 1].kind == TokKind::Punct &&
                   raw[k + 1].text == ":" &&
                   raw[k + 2].kind == TokKind::Punct &&
                   raw[k + 2].text == ":" &&
                   raw[k + 3].kind == TokKind::Identifier) {
                tok.text += "::" + raw[k + 3].text;
                k += 3;
            }
        }
        out.tokens.push_back(std::move(tok));
    }
    return out;
}

} // namespace mnoc::analyze
