/**
 * @file
 * Reader for compile_commands.json (the compilation database CMake
 * exports via CMAKE_EXPORT_COMPILE_COMMANDS).  mnoc-analyze derives
 * its translation-unit worklist and include search path from the
 * database, so the analyzed tree is exactly the tree the compiler
 * sees -- no hand-maintained file lists.
 *
 * Only the subset of JSON the database uses is parsed (objects,
 * arrays, strings; numbers and keywords are skipped), and both
 * encodings of the compiler invocation are understood: a single
 * "command" string and an "arguments" array.
 */

#ifndef MNOC_TOOLS_ANALYZE_COMPILE_DB_HH
#define MNOC_TOOLS_ANALYZE_COMPILE_DB_HH

#include <string>
#include <vector>

namespace mnoc::analyze {

/** One translation unit from the database. */
struct CompileCommand
{
    std::string file;      ///< absolute path of the source file
    std::string directory; ///< working directory of the compile
    std::vector<std::string> includeDirs; ///< -I paths (absolute)
};

/**
 * Parse the database at @p path.
 * @throws FatalError on unreadable files or malformed JSON, naming
 *         the file (and byte offset for syntax errors).
 */
std::vector<CompileCommand>
loadCompileDb(const std::string &path);

} // namespace mnoc::analyze

#endif // MNOC_TOOLS_ANALYZE_COMPILE_DB_HH
