/**
 * @file
 * Project include graph and layering rules for mnoc-analyze.
 *
 * The tree has a directed dependency order (DESIGN.md §13):
 *
 *   layer 0   common
 *   layer 1   optics, qap, noc, sim, workloads
 *   layer 2   core, faults, runtime
 *   layer 3   tools, bench, tests, examples
 *
 * A file may include files of its own layer or below; an include
 * that points up the order is a [layering] finding, and any cycle
 * among modules (even within one layer) is an [include-cycle]
 * finding, because a cycle makes the order meaningless.
 */

#ifndef MNOC_TOOLS_ANALYZE_INCLUDE_GRAPH_HH
#define MNOC_TOOLS_ANALYZE_INCLUDE_GRAPH_HH

#include <map>
#include <string>
#include <vector>

#include "tools/analyze/rules.hh"

namespace mnoc::analyze {

/** One resolved project-internal include edge. */
struct IncludeEdge
{
    std::string from; ///< including file (root-relative)
    std::string to;   ///< included file (root-relative)
    int line = 0;     ///< line of the #include directive
};

/** True when a root-relative path lies in one of the project code
 *  trees (src/, tools/, tests/, bench/, examples/); build output
 *  and fetched third-party sources are not analyzed. */
bool inProjectTree(const std::string &relpath);

/** Module a root-relative path belongs to: the directory under
 *  src/ ("common", "core", ...) or the top-level directory
 *  ("tools", "bench", "tests", "examples"). */
std::string moduleOf(const std::string &relpath);

/** Layer rank of @p module (0 = common ... 3 = tools/bench/tests);
 *  unknown modules rank as the top layer. */
int layerRank(const std::string &module);

/**
 * Resolve the include @p target written in @p from_rel against the
 * repository @p root and the @p search_dirs taken from the
 * compilation database.  Returns the root-relative path of the
 * included file, or "" when the target is not part of the project
 * (system headers, third-party code).
 */
std::string resolveInclude(const std::string &root,
                           const std::string &from_rel,
                           const std::string &target,
                           const std::vector<std::string> &search_dirs);

/** Layering and cycle findings over the full edge list. */
std::vector<Finding>
checkLayering(const std::vector<IncludeEdge> &edges);

} // namespace mnoc::analyze

#endif // MNOC_TOOLS_ANALYZE_INCLUDE_GRAPH_HH
