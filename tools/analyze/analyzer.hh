/**
 * @file
 * Driver of mnoc-analyze: worklist construction from the
 * compilation database (or an explicit file list), parallel per-TU
 * lexing + rule evaluation on the shared ThreadPool, include-graph
 * discovery of headers, layering checks, and baseline filtering.
 *
 * The analysis is deterministic by construction: the worklist is
 * sorted, parallelFor writes per-index result slots that are merged
 * in index order, and findings are sorted before reporting -- so
 * the output is byte-identical at any MNOC_THREADS.
 */

#ifndef MNOC_TOOLS_ANALYZE_ANALYZER_HH
#define MNOC_TOOLS_ANALYZE_ANALYZER_HH

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/rules.hh"

namespace mnoc::analyze {

/** Inputs of one analysis run. */
struct AnalyzerConfig
{
    std::string root;          ///< repository root (absolute)
    std::string compileDb;     ///< compile_commands.json, or ""
    std::vector<std::string> files; ///< explicit files (absolute)
    std::string baselinePath;  ///< baseline file, or ""
};

/** Outputs of one analysis run. */
struct AnalysisResult
{
    std::vector<Finding> findings; ///< sorted, baseline-filtered
    long long baselined = 0; ///< findings hidden by the baseline
    long long filesAnalyzed = 0;
};

/** Baseline entries: (root-relative path, rule) pairs. */
using Baseline = std::set<std::pair<std::string, std::string>>;

/**
 * Parse a baseline file.  Each non-comment line reads
 * `path [rule]`; '#' starts a comment.
 * @throws FatalError on unreadable files or malformed lines.
 */
Baseline loadBaseline(const std::string &path);

/** Run the full analysis described by @p config. */
AnalysisResult runAnalysis(const AnalyzerConfig &config);

} // namespace mnoc::analyze

#endif // MNOC_TOOLS_ANALYZE_ANALYZER_HH
