/**
 * @file
 * mnocpt — command-line front end to the mNoC power-topology library.
 *
 * Subcommands:
 *   simulate  run a SPLASH kernel, write a trace file; an --out
 *             ending in .mshards streams sealed epochs to a sharded
 *             trace directory as the run executes (bounded capture
 *             memory; see docs/TRACE_FORMAT.md)
 *   map       compute a taboo thread mapping from a trace
 *   design    build a power topology + splitter design from a trace
 *             (optionally hardened to a Monte Carlo yield target)
 *   evaluate  report the power of a design over a trace, streamed
 *             batch by batch (the trace is never materialized)
 *   budget    validate a design's link budgets / BER
 *   yield     Monte Carlo yield / margin distributions under device
 *             variation
 *   faults    replay a trace's epochs under a seeded runtime fault
 *             timeline with the graceful-degradation controller;
 *             write the fault event log and the per-epoch
 *             reliability (margin/action/energy) time series
 *   adapt     replay a trace's epochs under the traffic-driven
 *             adaptive controller (phase detection, retargeting,
 *             hysteretic switching); print the static-vs-adaptive
 *             energy comparison and write the per-epoch adaptive
 *             series and action log
 *   report    render a design + trace into the energy-attribution
 *             report: markdown summary, per-(source, mode) and
 *             per-epoch CSV tables, and a source-power heatmap, all
 *             stamped with the trace's embedded manifest
 *   explain   render a decision journal (MNOC_JOURNAL output) into a
 *             per-epoch timeline: markdown narrative, timeline CSV,
 *             a Chrome-trace counter/instant overlay, and optional
 *             JSONL
 *   profile   aggregate a span trace (MNOC_TRACE_SPANS output) into
 *             an inclusive/exclusive hotspot table
 *   stats     print a trace's embedded run manifest and the metrics
 *             the command collected (set MNOC_METRICS=1 to collect
 *             in any command; see README "Environment knobs")
 *
 * The report/faults/stats/evaluate verbs pull the trace through the
 * streaming reader (sim/trace_stream.hh), so they run in bounded
 * memory on radix-1024 and radix-4096 captures; sharded traces fan
 * their epoch shards across the MNOC_THREADS pool, bit-identical to
 * the single-threaded whole-file path.
 *
 * Examples:
 *   mnocpt simulate --benchmark water_s --cores 64 --out ws.trace
 *   mnocpt simulate --benchmark radix --cores 1024 \
 *                   --out rx.mshards --epochs-per-shard 128
 *   mnocpt map --trace ws.trace --out ws.map
 *   mnocpt design --trace ws.trace --map ws.map --modes 4 \
 *                 --assign comm --out ws.design
 *   mnocpt design --trace ws.trace --modes 4 --assign comm \
 *                 --yield-target 0.95 --out ws.design
 *   mnocpt evaluate --design ws.design --trace ws.trace --map ws.map
 *   mnocpt budget --design ws.design
 *   mnocpt yield --design ws.design --trials 500 --seed 7 \
 *                --csv ws_yield.csv
 *   mnocpt faults --design ws.design --trace ws.trace --seed 7 \
 *                 --dir faults_out
 *   mnocpt adapt --design ws.design --trace ws.trace --dir adapt_out
 *   mnocpt explain --journal mnoc_journal.mjrn --dir explain_out
 *   mnocpt report --design ws.design --trace ws.trace --map ws.map \
 *                 --dir report_out
 *   mnocpt profile --spans mnoc_spans.json --top 20
 *   mnocpt stats --trace ws.trace --json ws_metrics.json
 */

#include <array>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/io.hh"
#include "common/journal.hh"
#include "common/log.hh"
#include "common/manifest.hh"
#include "common/metrics.hh"
#include "common/pgm.hh"
#include "common/prng.hh"
#include "common/table.hh"
#include "common/trace_span.hh"
#include "core/design_io.hh"
#include "core/designer.hh"
#include "core/energy_ledger.hh"
#include "faults/variation.hh"
#include "faults/yield.hh"
#include "noc/mnoc_network.hh"
#include "optics/link_budget.hh"
#include "runtime/adaptive_controller.hh"
#include "runtime/degradation_controller.hh"
#include "runtime/fault_timeline.hh"
#include "sim/simulator.hh"
#include "sim/trace_stream.hh"
#include "workloads/registry.hh"

using namespace mnoc;

namespace {

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            fatalIf(key.size() < 3 || key.substr(0, 2) != "--",
                    "expected --option, got: " + key);
            fatalIf(i + 1 >= argc, "missing value for " + key);
            values_[key.substr(2)] = argv[++i];
        }
    }

    /** Required option: fatal when absent. */
    std::string
    get(const std::string &key) const
    {
        auto it = values_.find(key);
        fatalIf(it == values_.end(),
                "missing required option --" + key);
        return it->second;
    }

    /** Optional option with a fallback value. */
    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) > 0;
    }

    int
    getInt(const std::string &key, int fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        errno = 0;
        char *end = nullptr;
        long value = std::strtol(it->second.c_str(), &end, 10);
        fatalIf(errno != 0 || end == it->second.c_str() || *end != '\0' ||
                    value < INT_MIN || value > INT_MAX,
                "option --" + key + " needs an integer, got: " +
                    it->second);
        return static_cast<int>(value);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        errno = 0;
        char *end = nullptr;
        double value = std::strtod(it->second.c_str(), &end);
        fatalIf(errno != 0 || end == it->second.c_str() ||
                    *end != '\0' || !std::isfinite(value),
                "option --" + key + " needs a number, got: " +
                    it->second);
        return value;
    }

  private:
    std::map<std::string, std::string> values_;
};

/** Shared context sized for @p cores. */
struct Context
{
    explicit Context(int cores)
        : layout(cores,
                 optics::defaultWaveguideLength * cores / 256.0),
          crossbar(layout, optics::DeviceParams{}),
          designer(crossbar)
    {
    }

    optics::SerpentineLayout layout;
    optics::OpticalCrossbar crossbar;
    core::Designer designer;
};

/** Largest crossbar radix the scale-out analysis supports. */
constexpr int kMaxRadix = 4096;

/**
 * Validate @p cores as a crossbar radix.  The paper's design point is
 * radix 256; 1024 and 4096 are scale-out points, accepted after the
 * worst-case-loss check that crossbar-topology comparisons use (e.g.
 * "Optical Crossbars on Chip"): the geometric loss of the longest
 * source-to-tap path must still leave the worst-case unicast a finite
 * injected-power requirement, which is printed so the scaling cost is
 * explicit (EXPERIMENTS.md tabulates the three radixes).
 */
void
checkRadix(const Context &ctx, int cores)
{
    fatalIf(cores < 2, "need at least 2 cores");
    fatalIf(cores > kMaxRadix,
            "radix " + std::to_string(cores) +
                " exceeds the supported scale-out maximum " +
                std::to_string(kMaxRadix));
    if (cores <= 256)
        return;
    // Worst case: an end-of-serpentine source driving the far end.
    auto atten = ctx.crossbar.chain(0).tapAttenuation(cores - 1);
    double loss_db = ratioToDb(atten.value());
    WattPower worst = ctx.crossbar.params().pminAtTap() * atten;
    std::cout << "radix " << cores << " scale-out: worst-case chain "
              << "loss " << TextTable::num(loss_db, 2)
              << " dB; worst-case unicast needs "
              << TextTable::num(worst.watts() * 1e3, 3)
              << " mW injected\n";
}

std::vector<int>
loadMapping(const std::string &path, int cores)
{
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open mapping file: " + path);
    std::vector<int> map;
    std::string token;
    int line = 0;
    while (in >> token) {
        ++line;
        std::size_t used = 0;
        int core = 0;
        try {
            core = std::stoi(token, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        fatalIf(used != token.size(),
                path + ":" + std::to_string(line) +
                    ": field 'core': expected an integer, got '" +
                    token + "'");
        map.push_back(core);
    }
    fatalIf(static_cast<int>(map.size()) != cores,
            path + ": mapping lists " + std::to_string(map.size()) +
                " cores, expected " + std::to_string(cores));
    return map;
}

std::vector<int>
identity(int cores)
{
    std::vector<int> map(cores);
    for (int i = 0; i < cores; ++i)
        map[i] = i;
    return map;
}

/** True when @p out names a sharded trace directory (.mshards). */
bool
wantsShardedTrace(const std::string &out)
{
    const std::string suffix = ".mshards";
    return out.size() > suffix.size() &&
           out.compare(out.size() - suffix.size(), suffix.size(),
                       suffix) == 0;
}

int
cmdSimulate(const Args &args)
{
    std::string benchmark = args.get("benchmark");
    int cores = args.getInt("cores", 64);
    std::string out = args.get("out");

    Context ctx(cores);
    checkRadix(ctx, cores);
    noc::NetworkConfig net_config;
    noc::MnocNetwork network(ctx.layout, net_config);
    sim::SimConfig config;
    config.numCores = cores;
    workloads::WorkloadScale scale;
    scale.opsPerThread = args.getInt("ops", 4000);
    auto workload = workloads::makeWorkload(benchmark, scale);

    // An --out ending in .mshards streams sealed epochs straight into
    // shard files while the run executes, so capture memory stays
    // bounded however long the run is; the index (with the final tick
    // count and manifest) is written after the run completes.
    std::unique_ptr<sim::TraceShardWriter> shards;
    if (wantsShardedTrace(out)) {
        int epochs_per_shard = args.getInt("epochs-per-shard", 256);
        fatalIf(epochs_per_shard < 1,
                "--epochs-per-shard must be positive");
        shards = std::make_unique<sim::TraceShardWriter>(
            out, workload->name(), network.name(), cores,
            ledgerEnabled() ? ledgerEpochMessages() : 0,
            static_cast<std::size_t>(epochs_per_shard));
        config.epochSink =
            [&shards](std::vector<noc::EpochCell> &&cells) {
                shards->appendEpoch(cells);
            };
    }

    auto result = sim::runSimulation(config, network, *workload,
                                     args.getInt("seed", 1));
    auto trace = sim::toTrace(result);
    if (shards)
        shards->finish(trace.totalTicks, trace.packets, trace.flits,
                       trace.manifest);
    else
        sim::saveTrace(out, trace);
    std::cout << benchmark << ": " << result.coherence.accesses
              << " ops, " << result.coherence.packetsSent
              << " packets, " << result.totalTicks
              << " cycles -> " << out << "\n";
    return 0;
}

int
cmdMap(const Args &args)
{
    auto trace = sim::loadTrace(args.get("trace"));
    int cores = static_cast<int>(trace.flits.rows());
    Context ctx(cores);

    core::MappingParams params;
    params.tabooIterations = args.getInt("iterations", 20000);
    auto result = ctx.designer.map(toFlowMatrix(trace.flits),
                                   core::MappingMethod::Taboo, params);

    FileWriter out(args.get("out"));
    for (int core : result.threadToCore)
        out.stream() << core << "\n";
    out.close();
    std::cout << "QAP cost " << result.identityCost << " -> "
              << result.qapCost << " ("
              << 100.0 * (1.0 - result.qapCost / result.identityCost)
              << "% better), written to " << args.get("out") << "\n";
    return 0;
}

/**
 * Variation/yield options shared by `design --yield-target` and
 * `yield`: --trials, --vseed, --vtol (sigma scale factor),
 * --margin-step, --max-margin, --link-margin, --leak-gap.
 */
core::ResilienceParams
resilienceOptions(const Args &args)
{
    core::ResilienceParams out;
    out.variation =
        faults::VariationSpec{}.scaled(args.getDouble("vtol", 1.0));
    out.trials = args.getInt("trials", 200);
    out.seed = static_cast<std::uint64_t>(args.getInt("vseed", 1));
    out.marginStep = DecibelLoss(args.getDouble("margin-step", 0.5));
    out.maxMargin = DecibelLoss(args.getDouble("max-margin", 6.0));
    out.criteria.requiredMargin =
        DecibelLoss(args.getDouble("link-margin", 0.0));
    if (args.has("leak-gap"))
        out.criteria.maxLeak =
            DecibelLoss(args.getDouble("leak-gap", 0.0));
    return out;
}

void
printDegradationPath(const core::ResilienceSummary &summary)
{
    if (summary.path.empty())
        return;
    std::cout << "degradation path:\n";
    for (const auto &step : summary.path) {
        if (step.kind == core::DegradationStep::Kind::Margin) {
            std::cout << "  " << step.numModes << " modes @ "
                      << TextTable::num(step.margin.dB(), 2)
                      << " dB margin -> yield "
                      << TextTable::num(step.yield, 4) << "\n";
        } else {
            std::cout << "  collapse mode " << step.collapsedMode
                      << " into mode " << step.collapsedMode + 1
                      << " -> " << step.numModes << " modes\n";
        }
    }
}

int
cmdYield(const Args &args)
{
    auto loaded = core::loadDesignReport(args.get("design"));
    const auto &design = loaded.design;
    int cores = design.topology.numNodes;
    Context ctx(cores);

    core::ResilienceParams options = resilienceOptions(args);
    if (args.has("seed"))
        options.seed =
            static_cast<std::uint64_t>(args.getInt("seed", 1));
    auto report = faults::analyzeYield(
        ctx.layout, ctx.crossbar.params(), design.sources,
        options.variation, options.trials, options.seed,
        options.criteria);

    TextTable table;
    table.addRow({"metric", "value"});
    table.addRow({"yield", TextTable::num(report.yield, 4)});
    table.addRow({"trials", std::to_string(report.trials)});
    table.addRow({"seed", std::to_string(report.seed)});
    table.addRow({"worst margin mean (dB)",
                  TextTable::num(report.marginMean.dB(), 3)});
    table.addRow({"worst margin p5 (dB)",
                  TextTable::num(report.marginP5.dB(), 3)});
    table.addRow({"worst margin min (dB)",
                  TextTable::num(report.marginMin.dB(), 3)});
    auto sci = [](double value) {
        std::ostringstream os;
        os << std::scientific << std::setprecision(2) << value;
        return os.str();
    };
    table.addRow({"worst BER mean", sci(report.berWorstMean)});
    table.addRow({"worst BER max", sci(report.berWorstMax)});
    table.print(std::cout);

    for (std::size_t m = 0; m < report.marginFailuresByMode.size(); ++m)
        if (report.marginFailuresByMode[m] > 0 ||
            report.leakFailuresByMode[m] > 0)
            std::cout << "mode " << m << ": "
                      << report.marginFailuresByMode[m]
                      << " margin failures, "
                      << report.leakFailuresByMode[m]
                      << " leak failures\n";

    if (loaded.resilience) {
        const auto &summary = *loaded.resilience;
        std::cout << "hardened design: yield "
                  << TextTable::num(summary.finalYield, 4) << " vs "
                  << "target "
                  << TextTable::num(summary.yieldTarget, 4) << " ("
                  << (summary.metTarget ? "met" : "MISSED") << ")\n";
        printDegradationPath(summary);
    }

    if (args.has("csv")) {
        CsvWriter csv(args.get("csv"));
        csv.writeRow({"draw", "pass", "worst_margin_db",
                      "worst_leak_db", "worst_ber", "margin_failures",
                      "leak_failures"});
        for (std::size_t i = 0; i < report.draws.size(); ++i) {
            const auto &draw = report.draws[i];
            csv.cell(static_cast<long long>(i))
                .cell(static_cast<long long>(draw.pass ? 1 : 0))
                .cell(draw.worstMargin.dB())
                .cell(draw.worstLeak.dB())
                .cell(draw.worstBitErrorRate)
                .cell(static_cast<long long>(draw.marginFailures))
                .cell(static_cast<long long>(draw.leakFailures));
            csv.endRow();
        }
        std::cout << "per-draw results written to " << args.get("csv")
                  << "\n";
    }
    return 0;
}

int
cmdDesign(const Args &args)
{
    auto trace = sim::loadTrace(args.get("trace"));
    int cores = static_cast<int>(trace.flits.rows());
    Context ctx(cores);
    checkRadix(ctx, cores);

    auto mapping = args.has("map")
                       ? loadMapping(args.get("map"), cores)
                       : identity(cores);
    sim::Trace mapped = sim::mapTrace(trace, mapping);
    FlowMatrix flow = toFlowMatrix(mapped.flits);

    core::DesignSpec spec;
    spec.numModes = args.getInt("modes", 2);
    std::string assign = args.get("assign", "distance");
    if (assign == "comm") {
        spec.assignment = core::Assignment::CommAware;
        spec.weights = core::WeightSource::DesignFlow;
    } else if (assign == "distance") {
        spec.assignment = core::Assignment::DistanceBased;
        spec.weights = core::WeightSource::DesignFlow;
    } else if (assign == "clustered") {
        spec.assignment = core::Assignment::Clustered;
        spec.weights = core::WeightSource::Uniform;
    } else {
        fatal("unknown --assign (use comm/distance/clustered)");
    }

    auto topology = ctx.designer.buildTopology(spec, flow);
    // Provenance trailer: who built this design, from what knobs.
    RunManifest manifest = currentManifest(
        trace.manifest.seed,
        hexDigest(fnv1a64(spec.label() + "|" +
                          std::to_string(cores))));
    if (args.has("yield-target")) {
        core::ResilienceParams resilience = resilienceOptions(args);
        resilience.yieldTarget = args.getDouble("yield-target", 0.95);
        auto hardened = ctx.designer.buildResilientDesign(
            spec, topology, flow, resilience);
        core::saveDesign(args.get("out"), hardened.design,
                         &hardened.summary, &manifest);
        const auto &summary = hardened.summary;
        std::cout << "design " << spec.label() << " for " << cores
                  << " cores hardened to yield "
                  << TextTable::num(summary.finalYield, 4) << " ("
                  << (summary.metTarget ? "met" : "MISSED")
                  << " target "
                  << TextTable::num(summary.yieldTarget, 4) << ") at "
                  << TextTable::num(summary.finalMargin.dB(), 2)
                  << " dB margin, " << summary.finalNumModes
                  << " modes, written to " << args.get("out") << "\n";
        printDegradationPath(summary);
        return 0;
    }
    auto design = ctx.designer.buildDesign(spec, topology, flow);
    core::saveDesign(args.get("out"), design, nullptr, &manifest);
    std::cout << "design " << spec.label() << " for " << cores
              << " cores written to " << args.get("out") << "\n";
    return 0;
}

int
cmdEvaluate(const Args &args)
{
    auto design = core::loadDesign(args.get("design"));
    int cores = design.topology.numNodes;
    Context ctx(cores);

    auto mapping = args.has("map")
                       ? loadMapping(args.get("map"), cores)
                       : identity(cores);
    auto breakdown = ctx.designer.evaluateStreamed(
        design, args.get("trace"), mapping);

    TextTable table;
    table.addRow({"component", "power (W)"});
    table.addRow({"QD LED source", TextTable::num(breakdown.source, 3)});
    table.addRow({"O/E conversion", TextTable::num(breakdown.oe, 3)});
    table.addRow({"electrical", TextTable::num(breakdown.electrical,
                                               3)});
    table.addRow({"total", TextTable::num(breakdown.total(), 3)});
    table.print(std::cout);
    return 0;
}

int
cmdBudget(const Args &args)
{
    auto design = core::loadDesign(args.get("design"));
    int cores = design.topology.numNodes;
    Context ctx(cores);
    WattPower pmin = ctx.crossbar.params().pminAtTap();

    double worst_margin = 1e9;
    double worst_leak = -1e9;
    bool all_ok = true;
    for (int s = 0; s < cores; ++s) {
        auto report = optics::validateDesign(ctx.crossbar.chain(s),
                                             design.sources[s], pmin);
        worst_margin = std::min(worst_margin,
                                report.worstReachableMargin.dB());
        worst_leak = std::max(worst_leak,
                              report.worstUnreachableLeak.dB());
        all_ok = all_ok && report.ok;
    }
    std::cout << "link budget: "
              << (all_ok ? "OK" : "VIOLATED") << "\n"
              << "  worst reachable margin: "
              << TextTable::num(worst_margin, 3) << " dB\n"
              << "  worst sub-threshold leak: "
              << TextTable::num(worst_leak, 3) << " dB\n";
    return all_ok ? 0 : 1;
}

/** Deterministic scientific rendering for report numbers. */
std::string
sci(double value)
{
    std::ostringstream os;
    os << std::scientific << std::setprecision(6) << value;
    return os.str();
}

/** One as-fabricated draw for the runtime controller to degrade
 *  from; --vtol 0 (the default for `faults`) gives the identity
 *  draw, i.e. a nominal die. */
faults::DeviceVariation
drawBaseVariation(const Context &ctx, int cores, double vtol,
                  std::uint64_t vseed)
{
    Prng prng(vseed);
    return faults::drawVariation(faults::VariationSpec{}.scaled(vtol),
                                 ctx.crossbar.params(), cores, prng);
}

/** Per-epoch reliability time series: margins around the rule table,
 *  actions fired, surviving mode count, and the epoch's energy
 *  including the charged reconfiguration cells. */
void
writeReliabilityCsv(const std::string &path, const std::string &stamp,
                    const core::EnergyLedger &ledger,
                    const runtime::DegradationLog &log)
{
    CsvWriter csv(path);
    csv.writeRow({"# " + stamp});
    csv.writeRow({"epoch", "active_faults", "margin_before_db",
                  "margin_after_db", "actions", "num_modes",
                  "reconfig_energy_j", "total_energy_j"});
    for (const auto &epoch : log.epochs) {
        double window = ledger.reconfigEnergy(epoch.epoch) +
                        ledger.epochAttributedEnergy(epoch.epoch);
        csv.cell(static_cast<long long>(epoch.epoch))
            .cell(static_cast<long long>(epoch.activeFaults))
            .cell(epoch.marginBefore.dB())
            .cell(epoch.marginAfter.dB())
            .cell(static_cast<long long>(epoch.actions))
            .cell(static_cast<long long>(epoch.numModes))
            .cell(epoch.reconfigEnergy)
            .cell(window);
        csv.endRow();
    }
    csv.close();
}

int
cmdFaults(const Args &args)
{
    auto design = core::loadDesign(args.get("design"));
    int cores = design.topology.numNodes;
    Context ctx(cores);

    auto mapping = args.has("map")
                       ? loadMapping(args.get("map"), cores)
                       : identity(cores);
    // Streamed attribution: the trace is pulled epoch by epoch, never
    // materialized, so fault replays scale to radix-4096 captures.
    sim::TraceReader reader(args.get("trace"));
    sim::checkCoreMapping(mapping, reader.header().numNodes);
    auto ledger =
        ctx.designer.model().buildLedger(design, reader, &mapping);
    const RunManifest trace_manifest = reader.header().manifest;
    // Journal bytes must not depend on the rendering process's pool
    // size, so the header is stamped with the trace's manifest, the
    // same provenance the CSV artifacts carry.
    if (journalEnabled())
        Journal::global().setManifest(manifestJson(trace_manifest));

    std::uint64_t seed =
        args.has("seed")
            ? static_cast<std::uint64_t>(args.getInt("seed", 1))
            : faultSeed();
    auto spec = runtime::FaultTimelineSpec{}.scaled(
        args.getDouble("fault-scale", 1.0));
    runtime::FaultTimeline timeline(spec, cores,
                                    design.topology.numModes,
                                    ledger.numEpochs(), seed);
    auto variation = drawBaseVariation(
        ctx, cores, args.getDouble("vtol", 0.0),
        static_cast<std::uint64_t>(args.getInt("vseed", 1)));

    runtime::DegradationPolicy policy;
    policy.requiredMargin =
        DecibelLoss(args.getDouble("link-margin", 0.0));
    auto log = runtime::runDegradationController(
        ctx.layout, design, variation, timeline, policy, &ledger);

    double worst_before = 1e9, worst_after = 1e9;
    for (const auto &epoch : log.epochs) {
        worst_before = std::min(worst_before,
                                epoch.marginBefore.dB());
        worst_after = std::min(worst_after, epoch.marginAfter.dB());
    }

    using runtime::ActionKind;
    TextTable table;
    table.addRow({"metric", "value"});
    table.addRow({"epochs", std::to_string(log.epochs.size())});
    table.addRow(
        {"fault events", std::to_string(timeline.events().size())});
    table.addRow({"fault seed", std::to_string(seed)});
    table.addRow({"trims", std::to_string(log.countActions(
                               ActionKind::Trim))});
    table.addRow({"relaxes", std::to_string(log.countActions(
                                 ActionKind::Relax))});
    table.addRow({"failovers", std::to_string(log.countActions(
                                   ActionKind::Failover))});
    table.addRow({"restores", std::to_string(log.countActions(
                                  ActionKind::Restore))});
    table.addRow({"collapses", std::to_string(log.countActions(
                                   ActionKind::Collapse))});
    table.addRow({"final modes",
                  std::to_string(log.finalNumModes)});
    table.addRow({"worst margin before (dB)",
                  TextTable::num(worst_before, 3)});
    table.addRow({"worst margin after (dB)",
                  TextTable::num(worst_after, 3)});
    table.addRow({"reconfig energy (J)",
                  sci(log.totalReconfigEnergy)});
    table.print(std::cout);

    std::string dir = args.get("dir", ".");
    std::filesystem::create_directories(dir);
    std::string prefix = args.get("prefix", "mnoc_");
    std::string base = dir + "/" + prefix;
    std::string stamp = manifestJson(trace_manifest);

    std::string events_csv = base + "fault_events.csv";
    {
        CsvWriter csv(events_csv);
        csv.writeRow({"# " + stamp});
        csv.writeRow({"kind", "start_epoch", "end_epoch", "node",
                      "mode", "magnitude"});
        for (const auto &event : timeline.events()) {
            csv.cell(faultKindName(event.kind))
                .cell(static_cast<long long>(event.startEpoch))
                .cell(static_cast<long long>(event.endEpoch))
                .cell(static_cast<long long>(event.node))
                .cell(static_cast<long long>(event.mode))
                .cell(event.magnitude);
            csv.endRow();
        }
        csv.close();
    }

    std::string reliability_csv = base + "reliability.csv";
    writeReliabilityCsv(reliability_csv, stamp, ledger, log);

    std::cout << "fault log written to " << events_csv
              << ", reliability series to " << reliability_csv
              << "\n";
    return 0;
}

/** Rule-table knobs shared by `adapt` and the MNOC_ADAPT report
 *  section: struct defaults, the pricing/phase window from
 *  MNOC_ADAPT_WINDOW, and retarget candidates re-partitioned
 *  comm-aware with design-flow weighting at the deployed design's
 *  mode count. */
runtime::AdaptivePolicy
adaptivePolicy(const core::MnocDesign &design)
{
    runtime::AdaptivePolicy policy;
    policy.trafficWindow = static_cast<std::size_t>(adaptWindow());
    policy.candidateSpec.numModes = design.topology.numModes;
    policy.candidateSpec.assignment = core::Assignment::CommAware;
    policy.candidateSpec.weights = core::WeightSource::DesignFlow;
    return policy;
}

/** Per-epoch adaptive time series: active candidate, actions fired,
 *  and the epoch priced under the static vs the active design. */
void
writeAdaptiveCsv(const std::string &path, const std::string &stamp,
                 const runtime::AdaptiveLog &log)
{
    CsvWriter csv(path);
    csv.writeRow({"# " + stamp});
    csv.writeRow({"epoch", "active_design", "phase_change",
                  "actions", "static_energy_j", "adaptive_energy_j",
                  "reconfig_energy_j"});
    for (const auto &epoch : log.epochs) {
        csv.cell(static_cast<long long>(epoch.epoch))
            .cell(static_cast<long long>(epoch.activeDesign))
            .cell(static_cast<long long>(epoch.phaseChange ? 1 : 0))
            .cell(static_cast<long long>(epoch.actions))
            .cell(epoch.staticEnergy)
            .cell(epoch.adaptiveEnergy)
            .cell(epoch.reconfigEnergy);
        csv.endRow();
    }
    csv.close();
}

int
cmdAdapt(const Args &args)
{
    auto design = core::loadDesign(args.get("design"));
    int cores = design.topology.numNodes;
    Context ctx(cores);

    auto mapping = args.has("map")
                       ? loadMapping(args.get("map"), cores)
                       : identity(cores);

    // Pass 1 -- static baseline: the deployed design accrues the
    // whole trace, exactly as `report` would attribute it.
    sim::TraceReader static_reader(args.get("trace"));
    sim::checkCoreMapping(mapping, static_reader.header().numNodes);
    auto static_ledger = ctx.designer.model().buildLedger(
        design, static_reader, &mapping);
    const RunManifest trace_manifest =
        static_reader.header().manifest;
    // Same rule as the CSV artifacts: stamp the journal with the
    // trace's manifest so its bytes are thread-count-invariant.
    if (journalEnabled())
        Journal::global().setManifest(manifestJson(trace_manifest));

    runtime::AdaptivePolicy policy = adaptivePolicy(design);
    policy.phaseChangeThreshold = args.getDouble(
        "phase-threshold", policy.phaseChangeThreshold);
    if (args.has("window"))
        policy.trafficWindow =
            static_cast<std::size_t>(args.getInt("window", 4));
    policy.switchGainThreshold =
        args.getDouble("gain-threshold", policy.switchGainThreshold);
    policy.epochsToSwitch =
        args.getInt("switch-epochs", policy.epochsToSwitch);
    policy.maxCandidates =
        args.getInt("max-candidates", policy.maxCandidates);
    policy.switchEnergyPerSource = args.getDouble(
        "switch-energy", policy.switchEnergyPerSource);
    policy.candidateMargin =
        DecibelLoss(args.getDouble("margin", 0.0));

    // Pass 2 -- the adaptive run, accruing into its own ledger.
    sim::TraceReader reader(args.get("trace"));
    core::EnergyLedger adaptive_ledger(
        cores, design.topology.numModes, static_ledger.numEpochs(),
        static_ledger.durationSeconds());
    auto log = runtime::runAdaptiveController(
        ctx.designer, design, policy, reader, &mapping,
        &adaptive_ledger);
    auto comparison = runtime::reconcileAdaptive(
        static_ledger, adaptive_ledger, log);

    using runtime::AdaptiveActionKind;
    TextTable table;
    table.addRow({"metric", "value"});
    table.addRow({"epochs", std::to_string(log.epochs.size())});
    table.addRow({"traffic window",
                  std::to_string(policy.trafficWindow)});
    table.addRow({"phase changes",
                  std::to_string(log.countActions(
                      AdaptiveActionKind::PhaseChange))});
    table.addRow({"retargets",
                  std::to_string(log.countActions(
                      AdaptiveActionKind::Retarget))});
    table.addRow({"switches",
                  std::to_string(log.countActions(
                      AdaptiveActionKind::Switch))});
    table.addRow({"candidates built",
                  std::to_string(log.numCandidates)});
    table.addRow({"final design",
                  log.finalDesign == 0
                      ? std::string("0 (static)")
                      : std::to_string(log.finalDesign) +
                            " (retarget)"});
    table.addRow({"static energy (J)",
                  sci(comparison.staticEnergy)});
    table.addRow({"adaptive energy (J)",
                  sci(comparison.adaptiveEnergy)});
    table.addRow({"savings before reconfig (J)",
                  sci(comparison.savings)});
    table.addRow({"reconfig energy (J)",
                  sci(comparison.reconfigEnergy)});
    table.addRow({"net savings (J)", sci(comparison.netSavings)});
    if (comparison.staticEnergy > 0.0)
        table.addRow({"net savings (%)",
                      TextTable::num(100.0 * comparison.netSavings /
                                         comparison.staticEnergy,
                                     3)});
    table.print(std::cout);

    std::string dir = args.get("dir", ".");
    std::filesystem::create_directories(dir);
    std::string prefix = args.get("prefix", "mnoc_");
    std::string base = dir + "/" + prefix;
    std::string stamp = manifestJson(trace_manifest);

    std::string adaptive_csv = base + "adaptive.csv";
    writeAdaptiveCsv(adaptive_csv, stamp, log);

    std::string actions_csv = base + "adaptive_actions.csv";
    {
        CsvWriter csv(actions_csv);
        csv.writeRow({"# " + stamp});
        csv.writeRow(
            {"epoch", "kind", "design", "gain", "energy_cost_j"});
        for (const auto &action : log.actions) {
            csv.cell(static_cast<long long>(action.epoch))
                .cell(runtime::adaptiveActionKindName(action.kind))
                .cell(static_cast<long long>(action.design))
                .cell(action.gain)
                .cell(action.energyCost);
            csv.endRow();
        }
        csv.close();
    }

    std::cout << "adaptive series written to " << adaptive_csv
              << ", action log to " << actions_csv << "\n";
    return 0;
}

int
cmdReport(const Args &args)
{
    auto design = core::loadDesign(args.get("design"));
    int cores = design.topology.numNodes;
    Context ctx(cores);

    auto mapping = args.has("map")
                       ? loadMapping(args.get("map"), cores)
                       : identity(cores);
    // Streamed attribution: epoch shards fan out across the
    // MNOC_THREADS pool; the rendered bytes are identical to the
    // whole-file path at any thread count.
    sim::TraceReader reader(args.get("trace"));
    const sim::TraceHeader &trace_header = reader.header();
    sim::checkCoreMapping(mapping, trace_header.numNodes);
    if (journalEnabled())
        Journal::global().setManifest(
            manifestJson(trace_header.manifest));
    auto ledger =
        ctx.designer.model().buildLedger(design, reader, &mapping);

    // MNOC_FAULTS=1 replays the epochs under the default fault
    // timeline (seeded by MNOC_FAULT_SEED) before the averages are
    // taken, so the report's power numbers include the charged
    // reconfiguration energy.  Off by default: the unfaulted report
    // stays byte-identical.
    bool faults_on = faultsEnabled();
    runtime::DegradationLog deg_log;
    std::size_t fault_events = 0;
    std::uint64_t fault_seed_used = 0;
    if (faults_on) {
        fault_seed_used = faultSeed();
        runtime::FaultTimeline timeline(
            runtime::FaultTimelineSpec{}, cores,
            design.topology.numModes, ledger.numEpochs(),
            fault_seed_used);
        fault_events = timeline.events().size();
        auto variation = drawBaseVariation(ctx, cores, 0.0, 1);
        deg_log = runtime::runDegradationController(
            ctx.layout, design, variation, timeline,
            runtime::DegradationPolicy{}, &ledger);
    }
    auto power = ledger.averagePower();

    // MNOC_ADAPT=1 replays the epochs a second time under the
    // traffic-driven adaptive controller and adds a static-vs-
    // adaptive comparison section.  Off by default: the static
    // report stays byte-identical.
    bool adapt_on = adaptEnabled();
    runtime::AdaptiveLog adapt_log;
    runtime::AdaptiveComparison adapt_cmp;
    if (adapt_on) {
        runtime::AdaptivePolicy policy = adaptivePolicy(design);
        sim::TraceReader adapt_reader(args.get("trace"));
        core::EnergyLedger adaptive_ledger(
            cores, design.topology.numModes, ledger.numEpochs(),
            ledger.durationSeconds());
        adapt_log = runtime::runAdaptiveController(
            ctx.designer, design, policy, adapt_reader, &mapping,
            &adaptive_ledger);
        adapt_cmp = runtime::reconcileAdaptive(ledger,
                                               adaptive_ledger,
                                               adapt_log);
    }

    std::string dir = args.get("dir", ".");
    std::filesystem::create_directories(dir);
    std::string prefix = args.get("prefix", "mnoc_");
    std::string base = dir + "/" + prefix;
    // Stamp artifacts with the *trace's* embedded manifest: the
    // report describes that captured run, not this invocation, and
    // the stamp stays stable when the same trace is re-rendered.
    std::string stamp = manifestJson(trace_header.manifest);

    int modes = ledger.numModes();
    std::size_t num_epochs = ledger.numEpochs();

    // Per-(source, mode) totals across epochs, and the
    // time-weighted optical-loss energy attribution.
    std::vector<core::LedgerCell> totals(
        static_cast<std::size_t>(cores) *
        static_cast<std::size_t>(modes));
    optics::ChainLossBreakdown optical; // joules, not watts, here
    for (int s = 0; s < cores; ++s) {
        for (int m = 0; m < modes; ++m) {
            auto &total =
                totals[static_cast<std::size_t>(s) *
                           static_cast<std::size_t>(modes) +
                       static_cast<std::size_t>(m)];
            for (std::size_t e = 0; e < num_epochs; ++e) {
                const auto &cell = ledger.cell(s, m, e);
                total.flits += cell.flits;
                total.txSeconds += cell.txSeconds;
                total.sourceEnergy += cell.sourceEnergy;
                total.oeEnergy += cell.oeEnergy;
                total.electricalEnergy += cell.electricalEnergy;
            }
            const auto &loss = ledger.loss(s, m);
            double tx = total.txSeconds;
            optical.injected += tx * loss.injected;
            optical.sourceCoupling += tx * loss.sourceCoupling;
            optical.sourceSplit += tx * loss.sourceSplit;
            optical.waveguide += tx * loss.waveguide;
            optical.tapInsertion += tx * loss.tapInsertion;
            optical.receiverCoupling += tx * loss.receiverCoupling;
            optical.delivered += tx * loss.delivered;
            optical.residual += tx * loss.residual;
        }
    }

    // Per-(source, mode) attribution table.
    std::string power_csv = base + "power.csv";
    {
        CsvWriter csv(power_csv);
        csv.writeRow({"# " + stamp});
        csv.writeRow({"source", "mode", "flits", "tx_seconds",
                      "source_energy_j", "oe_energy_j",
                      "electrical_energy_j", "injected_w",
                      "source_coupling_w", "source_split_w",
                      "waveguide_w", "tap_insertion_w",
                      "receiver_coupling_w", "delivered_w",
                      "residual_w"});
        for (int s = 0; s < cores; ++s) {
            for (int m = 0; m < modes; ++m) {
                const auto &total =
                    totals[static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(modes) +
                           static_cast<std::size_t>(m)];
                if (total.flits == 0)
                    continue;
                const auto &loss = ledger.loss(s, m);
                csv.cell(static_cast<long long>(s))
                    .cell(static_cast<long long>(m))
                    .cell(static_cast<long long>(total.flits))
                    .cell(total.txSeconds)
                    .cell(total.sourceEnergy)
                    .cell(total.oeEnergy)
                    .cell(total.electricalEnergy)
                    .cell(loss.injected)
                    .cell(loss.sourceCoupling)
                    .cell(loss.sourceSplit)
                    .cell(loss.waveguide)
                    .cell(loss.tapInsertion)
                    .cell(loss.receiverCoupling)
                    .cell(loss.delivered)
                    .cell(loss.residual);
                csv.endRow();
            }
        }
        csv.close();
    }

    // Per-epoch time series.
    std::string epochs_csv = base + "epochs.csv";
    {
        CsvWriter csv(epochs_csv);
        csv.writeRow({"# " + stamp});
        csv.writeRow({"epoch", "flits", "tx_seconds",
                      "source_energy_j", "oe_energy_j",
                      "electrical_energy_j", "total_energy_j"});
        for (std::size_t e = 0; e < num_epochs; ++e) {
            core::LedgerCell window;
            for (int s = 0; s < cores; ++s) {
                for (int m = 0; m < modes; ++m) {
                    const auto &cell = ledger.cell(s, m, e);
                    window.flits += cell.flits;
                    window.txSeconds += cell.txSeconds;
                    window.sourceEnergy += cell.sourceEnergy;
                    window.oeEnergy += cell.oeEnergy;
                    window.electricalEnergy += cell.electricalEnergy;
                }
            }
            csv.cell(static_cast<long long>(e))
                .cell(static_cast<long long>(window.flits))
                .cell(window.txSeconds)
                .cell(window.sourceEnergy)
                .cell(window.oeEnergy)
                .cell(window.electricalEnergy)
                .cell(window.totalEnergy());
            csv.endRow();
        }
        csv.close();
    }

    // (epoch, source) power heatmap.
    std::string pgm = base + "source_power.pgm";
    writePgmHeatmap(pgm, ledger.sourceEpochPower(), true, stamp);

    // Per-epoch reliability time series (faulted runs only).
    std::string reliability_csv = base + "reliability.csv";
    if (faults_on)
        writeReliabilityCsv(reliability_csv, stamp, ledger, deg_log);

    // Per-epoch adaptive time series (MNOC_ADAPT=1 runs only).
    std::string adaptive_csv = base + "adaptive.csv";
    if (adapt_on)
        writeAdaptiveCsv(adaptive_csv, stamp, adapt_log);

    // Markdown summary.
    std::string report_md = base + "report.md";
    {
        FileWriter writer(report_md);
        auto &out = writer.stream();
        out << "# mNoC energy-attribution report\n\n";
        out << "- workload: " << trace_header.workloadName << "\n";
        out << "- network: " << trace_header.networkName << "\n";
        out << "- nodes: " << cores << ", modes: " << modes << "\n";
        out << "- cycles: " << trace_header.totalTicks
            << ", duration: "
            << sci(ledger.durationSeconds()) << " s\n";
        out << "- epochs: " << num_epochs;
        if (ledger.messagesPerEpoch() > 0)
            out << " (" << ledger.messagesPerEpoch()
                << " messages each)";
        else
            out << " (whole run; trace carries no epoch buckets)";
        out << "\n";
        out << "- trace manifest: `" << stamp << "`\n\n";

        out << "## Average power (W)\n\n";
        out << "| component | power (W) |\n";
        out << "|---|---|\n";
        out << "| QD LED source | " << sci(power.source) << " |\n";
        out << "| O/E conversion | " << sci(power.oe) << " |\n";
        out << "| electrical | " << sci(power.electrical) << " |\n";
        if (faults_on)
            out << "| reconfiguration | " << sci(power.reconfig)
                << " |\n";
        out << "| total | " << sci(power.total()) << " |\n\n";

        out << "## Optical energy attribution (J)\n\n";
        out << "Time-weighted splitter-chain walk; buckets sum to "
               "the injected optical energy (self-checked by the "
               "ledger).\n\n";
        out << "| bucket | energy (J) |\n";
        out << "|---|---|\n";
        out << "| injected | " << sci(optical.injected) << " |\n";
        out << "| source coupling | " << sci(optical.sourceCoupling)
            << " |\n";
        out << "| source split | " << sci(optical.sourceSplit)
            << " |\n";
        out << "| waveguide | " << sci(optical.waveguide) << " |\n";
        out << "| tap insertion | " << sci(optical.tapInsertion)
            << " |\n";
        out << "| receiver coupling | "
            << sci(optical.receiverCoupling) << " |\n";
        out << "| delivered | " << sci(optical.delivered) << " |\n";
        out << "| residual | " << sci(optical.residual) << " |\n\n";

        if (faults_on) {
            using runtime::ActionKind;
            double worst_after = 1e9;
            for (const auto &epoch : deg_log.epochs)
                worst_after = std::min(worst_after,
                                       epoch.marginAfter.dB());
            out << "## Reliability (MNOC_FAULTS=1)\n\n";
            out << "Epochs replayed under the runtime fault "
                   "timeline (seed "
                << fault_seed_used
                << ") with the graceful-degradation controller.\n\n";
            out << "| metric | value |\n";
            out << "|---|---|\n";
            out << "| fault events | " << fault_events << " |\n";
            out << "| trims | "
                << deg_log.countActions(ActionKind::Trim) << " |\n";
            out << "| relaxes | "
                << deg_log.countActions(ActionKind::Relax) << " |\n";
            out << "| failovers | "
                << deg_log.countActions(ActionKind::Failover)
                << " |\n";
            out << "| restores | "
                << deg_log.countActions(ActionKind::Restore)
                << " |\n";
            out << "| collapses | "
                << deg_log.countActions(ActionKind::Collapse)
                << " |\n";
            out << "| final modes | " << deg_log.finalNumModes
                << " |\n";
            out << "| worst post-action margin (dB) | "
                << TextTable::num(worst_after, 3) << " |\n";
            out << "| reconfiguration energy (J) | "
                << sci(deg_log.totalReconfigEnergy) << " |\n\n";
        }

        if (adapt_on) {
            using runtime::AdaptiveActionKind;
            out << "## Adaptive runtime (MNOC_ADAPT=1)\n\n";
            out << "Epochs replayed under the traffic-driven "
                   "mode-re-selection controller ("
                << adapt_log.epochs.size()
                << " epochs, MNOC_ADAPT_WINDOW=" << adaptWindow()
                << "); candidates re-partition the deployed mode "
                   "count against the trailing traffic window.\n\n";
            out << "| metric | value |\n";
            out << "|---|---|\n";
            out << "| phase changes | "
                << adapt_log.countActions(
                       AdaptiveActionKind::PhaseChange)
                << " |\n";
            out << "| retargets | "
                << adapt_log.countActions(
                       AdaptiveActionKind::Retarget)
                << " |\n";
            out << "| switches | "
                << adapt_log.countActions(AdaptiveActionKind::Switch)
                << " |\n";
            out << "| candidates built | " << adapt_log.numCandidates
                << " |\n";
            out << "| final design | " << adapt_log.finalDesign
                << (adapt_log.finalDesign == 0 ? " (static)"
                                               : " (retarget)")
                << " |\n";
            out << "| static energy (J) | "
                << sci(adapt_cmp.staticEnergy) << " |\n";
            out << "| adaptive energy (J) | "
                << sci(adapt_cmp.adaptiveEnergy) << " |\n";
            out << "| savings before reconfig (J) | "
                << sci(adapt_cmp.savings) << " |\n";
            out << "| reconfiguration energy (J) | "
                << sci(adapt_cmp.reconfigEnergy) << " |\n";
            out << "| net savings (J) | " << sci(adapt_cmp.netSavings)
                << " |\n";
            if (adapt_cmp.staticEnergy > 0.0)
                out << "| net savings (%) | "
                    << TextTable::num(100.0 * adapt_cmp.netSavings /
                                          adapt_cmp.staticEnergy,
                                      3)
                    << " |\n";
            out << "\n";
        }

        out << "## Artifacts\n\n";
        out << "- per-(source, mode) attribution: " << prefix
            << "power.csv\n";
        out << "- per-epoch time series: " << prefix
            << "epochs.csv\n";
        out << "- (epoch, source) power heatmap: " << prefix
            << "source_power.pgm\n";
        if (faults_on)
            out << "- per-epoch reliability series: " << prefix
                << "reliability.csv\n";
        if (adapt_on)
            out << "- per-epoch adaptive series: " << prefix
                << "adaptive.csv\n";
        writer.close();
    }

    std::cout << "report written to " << report_md << " (+ "
              << prefix << "power.csv, " << prefix << "epochs.csv, "
              << prefix << "source_power.pgm";
    if (faults_on)
        std::cout << ", " << prefix << "reliability.csv";
    if (adapt_on)
        std::cout << ", " << prefix << "adaptive.csv";
    std::cout << ")\n";
    return 0;
}

int
cmdProfile(const Args &args)
{
    std::string path = args.get("spans");
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open span file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatalIf(in.bad(), "I/O error reading span file: " + path);

    auto events = parseSpanJson(buffer.str(), path);
    auto rows = profileSpans(std::move(events));

    int top = args.getInt("top", 0);
    std::size_t limit = rows.size();
    if (top > 0 && static_cast<std::size_t>(top) < limit)
        limit = static_cast<std::size_t>(top);

    TextTable table;
    table.addRow({"span", "calls", "inclusive (ms)",
                  "exclusive (ms)"});
    for (std::size_t i = 0; i < limit; ++i) {
        const auto &row = rows[i];
        table.addRow(
            {row.name, std::to_string(row.calls),
             TextTable::num(
                 static_cast<double>(row.inclusiveUs) / 1000.0, 3),
             TextTable::num(
                 static_cast<double>(row.exclusiveUs) / 1000.0, 3)});
    }
    table.print(std::cout);
    if (limit < rows.size())
        std::cout << "(" << rows.size() - limit
                  << " more spans; raise --top)\n";

    if (args.has("csv")) {
        CsvWriter csv(args.get("csv"));
        csv.writeRow(
            {"span", "calls", "inclusive_us", "exclusive_us"});
        for (const auto &row : rows) {
            csv.cell(row.name)
                .cell(static_cast<long long>(row.calls))
                .cell(static_cast<long long>(row.inclusiveUs))
                .cell(static_cast<long long>(row.exclusiveUs));
            csv.endRow();
        }
        csv.close();
        std::cout << "profile written to " << args.get("csv") << "\n";
    }
    return 0;
}

int
cmdExplain(const Args &args)
{
    std::string journal_path = args.get("journal");
    JournalFile journal = loadJournal(journal_path);

    std::string dir = args.get("dir", ".");
    std::filesystem::create_directories(dir);
    std::string prefix = args.get("prefix", "mnoc_");
    std::string base = dir + "/" + prefix;

    std::string md_path = base + "explain.md";
    {
        FileWriter writer(md_path);
        writer.stream() << renderExplainMarkdown(journal);
        writer.close();
    }
    std::string csv_path = base + "timeline.csv";
    {
        FileWriter writer(csv_path);
        writer.stream() << renderExplainTimelineCsv(journal);
        writer.close();
    }
    // Counter/instant overlay for chrome://tracing; composes with a
    // MNOC_TRACE_SPANS capture of the same run (profile skips the
    // non-"X" phases).
    std::string trace_path = base + "explain_trace.json";
    {
        FileWriter writer(trace_path);
        writer.stream() << renderExplainTrace(journal);
        writer.close();
    }
    if (args.has("jsonl")) {
        FileWriter writer(args.get("jsonl"));
        writer.stream() << journalToJsonl(journal);
        writer.close();
    }

    std::array<std::size_t, kJournalKindCount + 1> counts{};
    for (const JournalRecord &rec : journal.records)
        ++counts[static_cast<std::uint32_t>(rec.kind)];
    TextTable table;
    table.addRow({"kind", "records"});
    for (std::uint32_t k = 1; k <= kJournalKindCount; ++k)
        if (counts[k] > 0)
            table.addRow(
                {journalKindName(static_cast<JournalKind>(k)),
                 std::to_string(counts[k])});
    table.addRow({"total", std::to_string(journal.records.size())});
    table.print(std::cout);

    std::cout << "decision timeline written to " << md_path << ", "
              << csv_path << ", " << trace_path;
    if (args.has("jsonl"))
        std::cout << ", " << args.get("jsonl");
    std::cout << "\n";
    return 0;
}

int
cmdStats(const Args &args)
{
    // Force collection on so the work below is always counted, even
    // without MNOC_METRICS in the environment.
    MetricsRegistry::setEnabled(true);
    if (args.has("trace")) {
        // Header-only streamed open: the manifest and dimensions sit
        // ahead of the bulk data, so stats never reads the epochs or
        // triplets of an arbitrarily large trace.
        sim::TraceReader reader(args.get("trace"));
        const sim::TraceHeader &header = reader.header();
        std::cout << "trace " << args.get("trace") << ": "
                  << header.workloadName << " on "
                  << header.networkName << ", " << header.numNodes
                  << " nodes, " << header.totalTicks << " cycles\n";
        if (header.numEpochs > 0)
            std::cout << "epochs: " << header.numEpochs << " ("
                      << header.messagesPerEpoch
                      << " messages each)\n";
        std::cout << "manifest: " << manifestJson(header.manifest)
                  << "\n";
    }
    auto &metrics = MetricsRegistry::global();
    metrics.printText(std::cout);
    // Warnings swallowed by MNOC_LOG_LEVEL still leave a trail here.
    std::cout << "log.suppressed_warnings " << suppressedWarningCount()
              << "\n";
    if (args.has("json")) {
        metrics.writeJson(args.get("json"));
        std::cout << "metrics written to " << args.get("json") << "\n";
    }
    return 0;
}

void
usage()
{
    std::cerr
        << "usage: mnocpt "
           "<simulate|map|design|evaluate|budget|yield|faults|adapt|"
           "report|explain|profile|stats> "
           "[--option value ...]\n"
           "  simulate --benchmark NAME [--cores N] [--ops N] "
           "[--seed N] --out FILE\n"
           "           (FILE ending in .mshards streams epochs to a "
           "sharded trace directory;\n"
           "           [--epochs-per-shard N] sets the shard size)\n"
           "  map      --trace FILE [--iterations N] --out FILE\n"
           "  design   --trace FILE [--map FILE] [--modes N] "
           "[--assign comm|distance|clustered]\n"
           "           [--yield-target Y [--trials N] [--vseed N] "
           "[--vtol F] [--margin-step DB]\n"
           "           [--max-margin DB] [--link-margin DB] "
           "[--leak-gap DB]] --out FILE\n"
           "  evaluate --design FILE --trace FILE [--map FILE]\n"
           "  budget   --design FILE\n"
           "  yield    --design FILE [--trials N] [--seed N] "
           "[--vtol F] [--link-margin DB]\n"
           "           [--leak-gap DB] [--csv FILE]\n"
           "  faults   --design FILE --trace FILE [--map FILE] "
           "[--seed N] [--fault-scale F]\n"
           "           [--vtol F] [--vseed N] [--link-margin DB] "
           "[--dir DIR] [--prefix P]\n"
           "  adapt    --design FILE --trace FILE [--map FILE] "
           "[--window N] [--phase-threshold F]\n"
           "           [--gain-threshold F] [--switch-epochs N] "
           "[--max-candidates N]\n"
           "           [--switch-energy J] [--margin DB] "
           "[--dir DIR] [--prefix P]\n"
           "  report   --design FILE --trace FILE [--map FILE] "
           "[--dir DIR] [--prefix P]\n"
           "  explain  --journal FILE [--dir DIR] [--prefix P] "
           "[--jsonl FILE]\n"
           "  profile  --spans FILE [--top N] [--csv FILE]\n"
           "  stats    [--trace FILE] [--json FILE]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string command = argv[1];
    try {
        Args args(argc, argv);
        if (command == "simulate")
            return cmdSimulate(args);
        if (command == "map")
            return cmdMap(args);
        if (command == "design")
            return cmdDesign(args);
        if (command == "evaluate")
            return cmdEvaluate(args);
        if (command == "budget")
            return cmdBudget(args);
        if (command == "yield")
            return cmdYield(args);
        if (command == "faults")
            return cmdFaults(args);
        if (command == "adapt")
            return cmdAdapt(args);
        if (command == "report")
            return cmdReport(args);
        if (command == "explain")
            return cmdExplain(args);
        if (command == "profile")
            return cmdProfile(args);
        if (command == "stats")
            return cmdStats(args);
        std::cerr << "mnocpt: unknown command '" << command
                  << "'\n";
        usage();
        return 2;
    } catch (const std::exception &error) {
        std::cerr << "mnocpt: " << error.what() << "\n";
        return 1;
    }
}
