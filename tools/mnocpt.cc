/**
 * @file
 * mnocpt — command-line front end to the mNoC power-topology library.
 *
 * Subcommands:
 *   simulate  run a SPLASH kernel, write a trace file
 *   map       compute a taboo thread mapping from a trace
 *   design    build a power topology + splitter design from a trace
 *   evaluate  report the power of a design over a trace
 *   budget    validate a design's link budgets / BER
 *
 * Examples:
 *   mnocpt simulate --benchmark water_s --cores 64 --out ws.trace
 *   mnocpt map --trace ws.trace --out ws.map
 *   mnocpt design --trace ws.trace --map ws.map --modes 4 \
 *                 --assign comm --out ws.design
 *   mnocpt evaluate --design ws.design --trace ws.trace --map ws.map
 *   mnocpt budget --design ws.design --cores 64
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "core/design_io.hh"
#include "core/designer.hh"
#include "noc/mnoc_network.hh"
#include "optics/link_budget.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

using namespace mnoc;

namespace {

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            fatalIf(key.size() < 3 || key.substr(0, 2) != "--",
                    "expected --option, got: " + key);
            fatalIf(i + 1 >= argc, "missing value for " + key);
            values_[key.substr(2)] = argv[++i];
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = values_.find(key);
        if (it == values_.end()) {
            fatalIf(fallback.empty() && key != "map",
                    "missing required option --" + key);
            return fallback;
        }
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) > 0;
    }

    int
    getInt(const std::string &key, int fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::atoi(it->second.c_str());
    }

  private:
    std::map<std::string, std::string> values_;
};

/** Shared context sized for @p cores. */
struct Context
{
    explicit Context(int cores)
        : layout(cores,
                 optics::defaultWaveguideLength * cores / 256.0),
          crossbar(layout, optics::DeviceParams{}),
          designer(crossbar)
    {
    }

    optics::SerpentineLayout layout;
    optics::OpticalCrossbar crossbar;
    core::Designer designer;
};

std::vector<int>
loadMapping(const std::string &path, int cores)
{
    std::ifstream in(path);
    fatalIf(!in.is_open(), "cannot open mapping file: " + path);
    std::vector<int> map;
    int core;
    while (in >> core)
        map.push_back(core);
    fatalIf(static_cast<int>(map.size()) != cores,
            "mapping size mismatch in " + path);
    return map;
}

std::vector<int>
identity(int cores)
{
    std::vector<int> map(cores);
    for (int i = 0; i < cores; ++i)
        map[i] = i;
    return map;
}

int
cmdSimulate(const Args &args)
{
    std::string benchmark = args.get("benchmark");
    int cores = args.getInt("cores", 64);
    std::string out = args.get("out");

    Context ctx(cores);
    noc::NetworkConfig net_config;
    noc::MnocNetwork network(ctx.layout, net_config);
    sim::SimConfig config;
    config.numCores = cores;
    workloads::WorkloadScale scale;
    scale.opsPerThread = args.getInt("ops", 4000);
    auto workload = workloads::makeWorkload(benchmark, scale);
    auto result = sim::runSimulation(config, network, *workload,
                                     args.getInt("seed", 1));
    sim::saveTrace(out, sim::toTrace(result));
    std::cout << benchmark << ": " << result.coherence.accesses
              << " ops, " << result.coherence.packetsSent
              << " packets, " << result.totalTicks
              << " cycles -> " << out << "\n";
    return 0;
}

int
cmdMap(const Args &args)
{
    auto trace = sim::loadTrace(args.get("trace"));
    int cores = static_cast<int>(trace.flits.rows());
    Context ctx(cores);

    core::MappingParams params;
    params.tabooIterations = args.getInt("iterations", 20000);
    auto result = ctx.designer.map(toFlowMatrix(trace.flits),
                                   core::MappingMethod::Taboo, params);

    std::ofstream out(args.get("out"));
    fatalIf(!out.is_open(), "cannot open output mapping file");
    for (int core : result.threadToCore)
        out << core << "\n";
    std::cout << "QAP cost " << result.identityCost << " -> "
              << result.qapCost << " ("
              << 100.0 * (1.0 - result.qapCost / result.identityCost)
              << "% better), written to " << args.get("out") << "\n";
    return 0;
}

int
cmdDesign(const Args &args)
{
    auto trace = sim::loadTrace(args.get("trace"));
    int cores = static_cast<int>(trace.flits.rows());
    Context ctx(cores);

    auto mapping = args.has("map")
                       ? loadMapping(args.get("map"), cores)
                       : identity(cores);
    sim::Trace mapped = sim::mapTrace(trace, mapping);
    FlowMatrix flow = toFlowMatrix(mapped.flits);

    core::DesignSpec spec;
    spec.numModes = args.getInt("modes", 2);
    std::string assign = args.get("assign", "distance");
    if (assign == "comm") {
        spec.assignment = core::Assignment::CommAware;
        spec.weights = core::WeightSource::DesignFlow;
    } else if (assign == "distance") {
        spec.assignment = core::Assignment::DistanceBased;
        spec.weights = core::WeightSource::DesignFlow;
    } else if (assign == "clustered") {
        spec.assignment = core::Assignment::Clustered;
        spec.weights = core::WeightSource::Uniform;
    } else {
        fatal("unknown --assign (use comm/distance/clustered)");
    }

    auto topology = ctx.designer.buildTopology(spec, flow);
    auto design = ctx.designer.buildDesign(spec, topology, flow);
    core::saveDesign(args.get("out"), design);
    std::cout << "design " << spec.label() << " for " << cores
              << " cores written to " << args.get("out") << "\n";
    return 0;
}

int
cmdEvaluate(const Args &args)
{
    auto design = core::loadDesign(args.get("design"));
    auto trace = sim::loadTrace(args.get("trace"));
    int cores = design.topology.numNodes;
    Context ctx(cores);

    auto mapping = args.has("map")
                       ? loadMapping(args.get("map"), cores)
                       : identity(cores);
    auto breakdown = ctx.designer.evaluate(design, trace, mapping);

    TextTable table;
    table.addRow({"component", "power (W)"});
    table.addRow({"QD LED source", TextTable::num(breakdown.source, 3)});
    table.addRow({"O/E conversion", TextTable::num(breakdown.oe, 3)});
    table.addRow({"electrical", TextTable::num(breakdown.electrical,
                                               3)});
    table.addRow({"total", TextTable::num(breakdown.total(), 3)});
    table.print(std::cout);
    return 0;
}

int
cmdBudget(const Args &args)
{
    auto design = core::loadDesign(args.get("design"));
    int cores = design.topology.numNodes;
    Context ctx(cores);
    double pmin = ctx.crossbar.params().pminAtTap();

    double worst_margin = 1e9;
    double worst_leak = -1e9;
    bool all_ok = true;
    for (int s = 0; s < cores; ++s) {
        auto report = optics::validateDesign(ctx.crossbar.chain(s),
                                             design.sources[s], pmin);
        worst_margin = std::min(worst_margin,
                                report.worstReachableMarginDb);
        worst_leak = std::max(worst_leak,
                              report.worstUnreachableLeakDb);
        all_ok = all_ok && report.ok;
    }
    std::cout << "link budget: "
              << (all_ok ? "OK" : "VIOLATED") << "\n"
              << "  worst reachable margin: "
              << TextTable::num(worst_margin, 3) << " dB\n"
              << "  worst sub-threshold leak: "
              << TextTable::num(worst_leak, 3) << " dB\n";
    return all_ok ? 0 : 1;
}

void
usage()
{
    std::cerr
        << "usage: mnocpt <simulate|map|design|evaluate|budget> "
           "[--option value ...]\n"
           "  simulate --benchmark NAME [--cores N] [--ops N] "
           "[--seed N] --out FILE\n"
           "  map      --trace FILE [--iterations N] --out FILE\n"
           "  design   --trace FILE [--map FILE] [--modes N] "
           "[--assign comm|distance|clustered] --out FILE\n"
           "  evaluate --design FILE --trace FILE [--map FILE]\n"
           "  budget   --design FILE\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string command = argv[1];
    try {
        Args args(argc, argv);
        if (command == "simulate")
            return cmdSimulate(args);
        if (command == "map")
            return cmdMap(args);
        if (command == "design")
            return cmdDesign(args);
        if (command == "evaluate")
            return cmdEvaluate(args);
        if (command == "budget")
            return cmdBudget(args);
        usage();
        return 2;
    } catch (const std::exception &error) {
        std::cerr << "mnocpt: " << error.what() << "\n";
        return 1;
    }
}
