#!/usr/bin/env python3
"""doc-check: documentation consistency checks for the mNoC tree.

Documentation that drifts from the code is worse than no
documentation, so this checker enforces the three invariants the
docs overhaul relies on:

  md-link        every relative markdown link in a tracked .md file
                 must resolve to an existing file, and a `#anchor`
                 fragment must match a heading in the target page
                 (GitHub slug rules: lowercase, punctuation dropped,
                 spaces to dashes).
  knob-table     the README environment-knob table and the code agree
                 in both directions: every `MNOC_*` variable the code
                 reads (via getenv / envInt) has a README row, and
                 every README row names a variable the code actually
                 reads.  The manifest's recorded-knob list must be a
                 subset of the documented knobs.
  orphan-doc     every page under docs/ is reachable by following
                 relative links from README.md and DESIGN.md, so no
                 page can silently fall out of the documentation
                 tree.

Usage:
  tools/doc_check.py [--root DIR]

Exits 0 when clean, 1 when any finding is reported, 2 on usage
errors.  Findings print as `path:line: [rule] message`, matching
mnoc-lint's output shape.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Markdown files checked for links, relative to the repo root.
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
             "CHANGES.md")
DOC_DIRS = ("docs",)

# Roots of the reachability walk for the orphan-doc rule.
LINK_ROOTS = ("README.md", "DESIGN.md")

# Directories scanned for MNOC_* environment reads.
CODE_DIRS = ("src", "tools", "bench", "examples")

# MNOC_* identifiers that are not environment knobs: the compile-time
# git stamp and the header-guard namespace.
KNOB_EXCLUDE_RE = re.compile(r"^MNOC_GIT_SHA$|_HH$")

MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
GETENV_RE = re.compile(r"getenv\(\"(MNOC_[A-Z_]+)\"\)")
ENVINT_RE = re.compile(r"envInt\(\"(MNOC_[A-Z_]+)\"")
README_ROW_RE = re.compile(r"^\|\s*`(MNOC_[A-Z_]+)`\s*\|")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
KNOB_ARRAY_RE = re.compile(r"\"(MNOC_[A-Z_]+)\"")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: Path) -> list[Path]:
    files = [root / name for name in DOC_FILES
             if (root / name).is_file()]
    for sub in DOC_DIRS:
        files.extend(sorted((root / sub).glob("*.md")))
    return files


def page_anchors(path: Path) -> set[str]:
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(1)))
    return anchors


def extract_links(path: Path) -> list[tuple[int, str]]:
    links = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in MD_LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_links(root: Path, findings: list[str]) -> dict[Path, set]:
    """Validate every relative link; return the link graph."""
    graph: dict[Path, set] = {}
    anchor_cache: dict[Path, set] = {}
    for page in markdown_files(root):
        rel = page.relative_to(root)
        graph[rel] = set()
        for lineno, target in extract_links(page):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # absolute URL (https:, mailto:, ...)
            raw, _, anchor = target.partition("#")
            if not raw:
                dest = page  # pure in-page anchor
            else:
                dest = (page.parent / raw).resolve()
                if not dest.is_file():
                    findings.append(
                        f"{rel}:{lineno}: [md-link] broken link "
                        f"'{target}': no such file")
                    continue
            if dest.suffix == ".md" and dest.is_relative_to(root):
                graph[rel].add(dest.relative_to(root))
            if anchor:
                if dest not in anchor_cache:
                    anchor_cache[dest] = page_anchors(dest)
                if anchor not in anchor_cache[dest]:
                    findings.append(
                        f"{rel}:{lineno}: [md-link] broken anchor "
                        f"'{target}': no heading slugs to "
                        f"'#{anchor}'")
    return graph


def code_knobs(root: Path) -> dict[str, str]:
    """Every MNOC_* env variable the code reads, with one site."""
    knobs: dict[str, str] = {}
    for sub in CODE_DIRS:
        for ext in ("*.cc", "*.hh", "*.cpp"):
            for path in sorted((root / sub).rglob(ext)):
                if "fixtures" in path.parts:
                    continue
                text = path.read_text(encoding="utf-8",
                                      errors="replace")
                for regex in (GETENV_RE, ENVINT_RE):
                    for match in regex.finditer(text):
                        name = match.group(1)
                        if not KNOB_EXCLUDE_RE.search(name):
                            knobs.setdefault(
                                name, str(path.relative_to(root)))
    return knobs


def readme_knobs(root: Path) -> dict[str, int]:
    rows: dict[str, int] = {}
    readme = root / "README.md"
    for lineno, line in enumerate(
            readme.read_text(encoding="utf-8").splitlines(), 1):
        match = README_ROW_RE.match(line)
        if match:
            rows.setdefault(match.group(1), lineno)
    return rows


def manifest_knobs(root: Path) -> list[str]:
    """The recorded-knob array in src/common/manifest.cc."""
    source = root / "src" / "common" / "manifest.cc"
    text = source.read_text(encoding="utf-8")
    match = re.search(r"kKnobs\[\]\s*=\s*\{(.*?)\}", text, re.S)
    if not match:
        return []
    return KNOB_ARRAY_RE.findall(match.group(1))


def check_knobs(root: Path, findings: list[str]) -> None:
    in_code = code_knobs(root)
    in_readme = readme_knobs(root)
    for name, site in sorted(in_code.items()):
        if name not in in_readme:
            findings.append(
                f"README.md:1: [knob-table] {name} is read by "
                f"{site} but has no row in the environment-knob "
                f"table")
    for name, lineno in sorted(in_readme.items()):
        if name not in in_code:
            findings.append(
                f"README.md:{lineno}: [knob-table] {name} is "
                f"documented but nothing under "
                f"{'/'.join(CODE_DIRS)} reads it")
    for name in manifest_knobs(root):
        if name not in in_readme:
            findings.append(
                f"src/common/manifest.cc:1: [knob-table] manifest "
                f"records {name} but the README table does not "
                f"document it")


def check_orphans(root: Path, graph: dict[Path, set],
                  findings: list[str]) -> None:
    reachable = set()
    stack = [Path(name) for name in LINK_ROOTS]
    while stack:
        page = stack.pop()
        if page in reachable:
            continue
        reachable.add(page)
        stack.extend(graph.get(page, ()))
    for page in graph:
        if page.parts[0] in DOC_DIRS and page not in reachable:
            findings.append(
                f"{page}:1: [orphan-doc] not reachable by links "
                f"from {' or '.join(LINK_ROOTS)}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="documentation consistency checks")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = Path(args.root).resolve()
    if not (root / "README.md").is_file():
        print(f"doc_check: no README.md under {root}",
              file=sys.stderr)
        return 2

    findings: list[str] = []
    graph = check_links(root, findings)
    check_knobs(root, findings)
    check_orphans(root, graph, findings)

    for finding in sorted(findings):
        print(finding)
    if findings:
        print(f"doc_check: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"doc_check: {len(graph)} pages clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
