#!/bin/sh
# Run the full test suite in both build configurations: the regular
# optimized build and an ASan+UBSan build (-DMNOC_SANITIZE=ON).
# Usage: tools/check.sh [jobs]
set -e
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

run_config() {
    dir="$1"
    shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$JOBS"
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== regular configuration =="
run_config build

echo "== sanitizer configuration (ASan+UBSan) =="
run_config build-asan -DMNOC_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug

echo "all checks passed"
