#!/bin/sh
# Full pre-merge gate: static analysis, then the test suite in three
# build configurations -- the regular optimized build, an ASan+UBSan
# build (-DMNOC_SANITIZE=ON), and a TSan build (-DMNOC_TSAN=ON).
# Usage: tools/check.sh [jobs]
set -eu
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

run_config() {
    dir="$1"
    shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$JOBS"
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== regular configuration =="
run_config build -DMNOC_WERROR=ON

echo "== static analysis (mnoc-lint, clang-format, clang-tidy) =="
sh tools/lint.sh build

echo "== static analysis (mnoc-analyze) =="
./build/tools/analyze/mnoc-analyze --root . \
    --compile-commands build/compile_commands.json \
    --baseline tools/analyze/baseline.txt

echo "== documentation checks (doc_check) =="
python3 tools/doc_check.py --root .

echo "== sanitizer configuration (ASan+UBSan) =="
run_config build-asan -DMNOC_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug

echo "== sanitizer configuration (TSan) =="
run_config build-tsan -DMNOC_TSAN=ON -DCMAKE_BUILD_TYPE=Debug

echo "all checks passed"
