#!/bin/sh
# Static-analysis driver: mnoc-lint (always), clang-format and
# clang-tidy (when the binaries exist -- the CI image has them, the
# minimal dev container may not; missing tools are reported as
# SKIPPED, never as failures).
#
# Usage: tools/lint.sh [build-dir]
#   build-dir  directory holding compile_commands.json for clang-tidy
#              (default: build; configure with CMake first)
#
# Exits 0 only when every stage that could run found nothing.
set -eu
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
status=0

stage() {
    echo "== $1 =="
}

# --- mnoc-lint: domain rules, always available (python3). ----------
stage "mnoc-lint"
if python3 tools/mnoc_lint.py --root .; then
    :
else
    status=1
fi

# --- clang-format: whole-tree style check. -------------------------
stage "clang-format"
if command -v clang-format > /dev/null 2>&1; then
    files=$(find src tests tools bench examples \
                 \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \) \
                 -not -path '*/lint_fixtures/*')
    if clang-format --dry-run -Werror $files; then
        echo "clang-format: clean"
    else
        status=1
    fi
else
    echo "clang-format: SKIPPED (binary not installed)"
fi

# --- clang-tidy: curated checks from .clang-tidy. ------------------
stage "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "clang-tidy: no $build_dir/compile_commands.json;" \
             "run: cmake -B $build_dir -S ." >&2
        status=1
    else
        files=$(find src tools bench examples \
                     \( -name '*.cc' -o -name '*.cpp' \))
        if command -v run-clang-tidy > /dev/null 2>&1; then
            if run-clang-tidy -quiet -p "$build_dir" $files; then
                echo "clang-tidy: clean"
            else
                status=1
            fi
        else
            tidy_failed=0
            for f in $files; do
                clang-tidy -quiet -p "$build_dir" "$f" || tidy_failed=1
            done
            if [ "$tidy_failed" -eq 0 ]; then
                echo "clang-tidy: clean"
            else
                status=1
            fi
        fi
    fi
else
    echo "clang-tidy: SKIPPED (binary not installed)"
fi

if [ "$status" -eq 0 ]; then
    echo "lint: all available stages clean"
else
    echo "lint: FAILURES above" >&2
fi
exit "$status"
